// Extra experiment: Direct Synchronization vs Phase Modification.
//
// The paper's introduction summarizes [1]: appropriate synchronization (PM)
// reduces worst-case end-to-end bounds compared to plain DS analysis, "but
// adds overhead to the system and increases the average end-to-end response
// times". This bench reproduces the trade-off on random periodic shops:
//
//   * analysis bounds per job: SPP/Exact (DS trace), SPP/S&L (DS holistic),
//     SPP/PM (phase modification);
//   * simulated mean and worst end-to-end responses under both protocols.
//
// Flags: --systems N (default 25)  --jobs N (default 6)  --util U (def 0.85)
//        --seed S  --out FILE.csv
#include <cmath>
#include <cstdio>

#include "analysis/holistic.hpp"
#include "analysis/phase_mod.hpp"
#include "analysis/spp_exact.hpp"
#include "model/priority.hpp"
#include "sim/simulator.hpp"
#include "util/csv.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "workload/jobshop.hpp"

using namespace rta;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const std::size_t systems = opts.get_int("systems", 25);
  const std::size_t jobs = opts.get_int("jobs", 6);
  const double util = opts.get_double("util", 0.85);
  const std::uint64_t seed = opts.get_int("seed", 17);
  const std::string out = opts.get("out", "sync_protocols.csv");

  std::printf("Direct Synchronization vs Phase Modification, periodic shops "
              "(%zu systems/row, jobs=%zu, util=%.2f)\n\n",
              systems, jobs, util);
  std::printf("%7s %12s %12s %12s | %10s %10s %10s %10s\n", "stages",
              "bnd:Exact", "bnd:S&L", "bnd:PM", "sim DS avg", "sim PM avg",
              "sim DS max", "sim PM max");

  CsvWriter csv({"stages", "bound_exact", "bound_sl", "bound_pm",
                 "sim_ds_mean", "sim_pm_mean", "sim_ds_worst",
                 "sim_pm_worst"});

  for (std::size_t stages : {1ul, 2ul, 4ul}) {
    RunningStats b_exact, b_sl, b_pm, ds_mean, pm_mean, ds_worst, pm_worst;
    for (std::uint64_t s = 1; s <= systems; ++s) {
      JobShopConfig cfg;
      cfg.stages = stages;
      cfg.processors_per_stage = 2;
      cfg.jobs = jobs;
      cfg.utilization = util;
      cfg.window_periods = 6.0;
      cfg.min_rate = 0.2;
      Rng rng(seed * 100 + s);
      System sys = generate_jobshop(cfg, rng);
      assign_proportional_deadline_monotonic(sys);

      PhaseSchedule schedule;
      const AnalysisResult pm = PhaseModAnalyzer().analyze(sys, &schedule);
      const AnalysisResult sl = HolisticAnalyzer().analyze(sys);
      const AnalysisResult exact = ExactSppAnalyzer().analyze(sys);
      if (!pm.ok || !sl.ok || !exact.ok) continue;

      const Time horizon = default_horizon(sys, AnalysisConfig{});
      const SimResult sim_ds = simulate(sys, horizon);
      const SimResult sim_pm = simulate_phased(sys, schedule, horizon);

      for (int k = 0; k < sys.job_count(); ++k) {
        if (std::isfinite(exact.jobs[k].wcrt)) b_exact.add(exact.jobs[k].wcrt);
        if (std::isfinite(sl.jobs[k].wcrt)) b_sl.add(sl.jobs[k].wcrt);
        if (std::isfinite(pm.jobs[k].wcrt)) b_pm.add(pm.jobs[k].wcrt);
        if (std::isfinite(sim_ds.worst_response[k])) {
          ds_worst.add(sim_ds.worst_response[k]);
        }
        if (std::isfinite(sim_pm.worst_response[k])) {
          pm_worst.add(sim_pm.worst_response[k]);
        }
        for (std::size_t m = 0; m < sim_ds.traces[k].size(); ++m) {
          if (sim_ds.traces[k][m].completed()) {
            ds_mean.add(sim_ds.traces[k][m].response());
          }
          if (sim_pm.traces[k][m].completed()) {
            pm_mean.add(sim_pm.traces[k][m].response());
          }
        }
      }
    }
    std::printf("%7zu %12.3f %12.3f %12.3f | %10.3f %10.3f %10.3f %10.3f\n",
                stages, b_exact.mean(), b_sl.mean(), b_pm.mean(),
                ds_mean.mean(), pm_mean.mean(), ds_worst.mean(),
                pm_worst.mean());
    csv.add(stages, b_exact.mean(), b_sl.mean(), b_pm.mean(), ds_mean.mean(),
            pm_mean.mean(), ds_worst.mean(), pm_worst.mean());
    std::fflush(stdout);
  }

  std::printf("\n(expected: bnd:PM <= bnd:S&L, and sim PM avg >= sim DS avg "
              "-- synchronization trades average latency for analyzable "
              "worst cases; SPP/Exact needs neither.)\n");
  if (csv.write_file(out)) std::printf("wrote %s\n", out.c_str());
  return 0;
}
