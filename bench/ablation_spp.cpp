// Ablation (beyond the paper): how much does EXACTNESS buy over the bounds
// machinery on the same preemptive systems? Compares admission probability
// of SPP/Exact (Thms 1-3), SPP/App (Thms 4-6 with b = 0) and SPP/S&L on
// identical periodic job sets, and SPP/Exact vs SPP/App on aperiodic ones.
//
// This isolates the two sources of pessimism the paper attributes to
// SPP/S&L (over-estimated subjob arrivals) from the per-hop summation of
// Theorem 4.
//
// Flags: --trials N (default 80)  --stages N (default 3)  --step U
//        --jobs N (default 8)     --seed S                --out FILE.csv
#include <cstdio>

#include "bench/bench_util.hpp"
#include "util/options.hpp"

using namespace rta;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const std::size_t trials = opts.get_int("trials", 80);
  const std::size_t stages = opts.get_int("stages", 3);
  const std::size_t jobs = opts.get_int("jobs", 8);
  const double step = opts.get_double("step", 0.2);
  const std::uint64_t seed = opts.get_int("seed", 42);
  const std::string out = opts.get("out", "ablation_spp.csv");

  const std::vector<double> grid = bench::utilization_grid(0.1, 1.7, step);

  std::printf("Ablation: exact vs approximate analysis on identical SPP "
              "systems (stages=%zu, jobs=%zu, trials=%zu)\n",
              stages, jobs, trials);

  CsvWriter csv({"panel", "utilization", "method", "admission_probability",
                 "ci95_half_width", "trials"});

  {
    AdmissionConfig cfg;
    cfg.shop.stages = stages;
    cfg.shop.processors_per_stage = 2;
    cfg.shop.jobs = jobs;
    cfg.shop.pattern = ArrivalPattern::kPeriodic;
    cfg.shop.deadline.period_multiple = 3.0;
    cfg.shop.window_periods = 6.0;
    cfg.shop.min_rate = 0.1;
    cfg.utilizations = grid;
    cfg.methods = {Method::kSppExact, Method::kSppApp, Method::kSppSL};
    cfg.trials = trials;
    cfg.seed = seed;
    const auto points = run_admission_experiment(cfg);
    bench::print_panel("ablation(periodic)",
                       "periodic arrivals, deadline = 3 x period", grid,
                       cfg.methods, points, &csv);
  }
  {
    AdmissionConfig cfg;
    cfg.shop.stages = stages;
    cfg.shop.processors_per_stage = 2;
    cfg.shop.jobs = jobs;
    cfg.shop.pattern = ArrivalPattern::kAperiodic;
    cfg.shop.deadline.mean = 4.0;
    cfg.shop.deadline.variance = 16.0;
    cfg.shop.window_periods = 6.0;
    cfg.shop.min_rate = 0.1;
    cfg.utilizations = grid;
    cfg.methods = {Method::kSppExact, Method::kSppApp};
    cfg.trials = trials;
    cfg.seed = seed;
    const auto points = run_admission_experiment(cfg);
    bench::print_panel("ablation(aperiodic)",
                       "bursty arrivals, deadline ~ Gamma(4, 16) periods",
                       grid, cfg.methods, points, &csv);
  }

  if (csv.write_file(out)) std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
