// Regression tests for ThreadPool::parallel_for_index, in particular the
// exception contract: a throwing body must propagate its exception to the
// caller instead of deadlocking the loop (or terminating a worker), and the
// pool must stay usable afterwards.
#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.hpp"

namespace rta {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t count : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> visits(count);
    pool.parallel_for_index(count, [&](std::size_t i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "count " << count << " index " << i;
    }
  }
}

TEST(ThreadPool, ResultsIndependentOfWorkerCount) {
  constexpr std::size_t kCount = 257;
  std::vector<long long> reference(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    reference[i] = static_cast<long long>(i * i + 3 * i);
  }
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    ThreadPool pool(workers);
    std::vector<long long> out(kCount, -1);
    pool.parallel_for_index(kCount, [&](std::size_t i) {
      out[i] = static_cast<long long>(i * i + 3 * i);
    });
    EXPECT_EQ(out, reference) << "workers " << workers;
  }
}

// The original deadlock scenario: a body throws while sibling shards are
// still pulling indices. The exception must surface on the calling thread
// and the wait must terminate.
TEST(ThreadPool, ExceptionPropagatesWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for_index(100,
                              [&](std::size_t i) {
                                ran.fetch_add(1, std::memory_order_relaxed);
                                if (i == 13) {
                                  throw std::runtime_error("boom at 13");
                                }
                              }),
      std::runtime_error);
  // Some indices may be abandoned after the throw, but none run twice and
  // the throwing index itself ran.
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), 100);
}

TEST(ThreadPool, ExceptionMessageIsTheFirstFailure) {
  ThreadPool pool(2);
  try {
    pool.parallel_for_index(1, [](std::size_t) {
      throw std::runtime_error("solo failure");
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "solo failure");
  }
}

TEST(ThreadPool, PoolSurvivesAnException) {
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    EXPECT_THROW(pool.parallel_for_index(
                     50, [](std::size_t i) {
                       if (i % 7 == 3) throw std::logic_error("recurring");
                     }),
                 std::logic_error);
    // Immediately after a failed loop the pool must run a clean one.
    std::atomic<long long> sum{0};
    pool.parallel_for_index(100, [&](std::size_t i) {
      sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 4950);
  }
}

// Nested parallel_for_index: every outer body starts an inner loop on the
// same pool. The caller-participates design means this completes even when
// the outer loop occupies every worker.
TEST(ThreadPool, NestedLoopsMakeProgress) {
  ThreadPool pool(2);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 16;
  std::vector<std::atomic<int>> cells(kOuter * kInner);
  pool.parallel_for_index(kOuter, [&](std::size_t o) {
    pool.parallel_for_index(kInner, [&, o](std::size_t i) {
      cells[o * kInner + i].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (const auto& c : cells) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ExceptionInsideNestedLoopPropagatesToOuterCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_index(4,
                                       [&](std::size_t o) {
                                         pool.parallel_for_index(
                                             4, [o](std::size_t i) {
                                               if (o == 2 && i == 2) {
                                                 throw std::runtime_error(
                                                     "nested");
                                               }
                                             });
                                       }),
               std::runtime_error);
}

TEST(ThreadPool, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for_index(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, StatsCountCleanLoops) {
  ThreadPool pool(2);
  const ThreadPool::Stats before = pool.stats();
  EXPECT_EQ(before.loops, 0u);
  EXPECT_EQ(before.indices_executed, 0u);
  EXPECT_EQ(before.worker_busy_ns.size(), 2u);

  pool.parallel_for_index(64, [](std::size_t) {});
  pool.parallel_for_index(10, [](std::size_t) {});
  const ThreadPool::Stats after = pool.stats();
  EXPECT_EQ(after.loops, 2u);
  EXPECT_EQ(after.indices_executed, 74u);
  EXPECT_EQ(after.indices_abandoned, 0u);
}

// The exception path must keep the books balanced: every index of the loop
// is either executed (ran to completion or threw) or abandoned, and the
// counts are final by the time parallel_for_index returns.
TEST(ThreadPool, StatsAccountForEveryIndexAfterAnException) {
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    const ThreadPool::Stats before = pool.stats();
    EXPECT_THROW(pool.parallel_for_index(
                     200,
                     [](std::size_t i) {
                       if (i == 50) throw std::runtime_error("boom at 50");
                     }),
                 std::runtime_error);
    const ThreadPool::Stats after = pool.stats();
    EXPECT_EQ(after.loops, before.loops + 1);
    const std::uint64_t executed =
        after.indices_executed - before.indices_executed;
    const std::uint64_t abandoned =
        after.indices_abandoned - before.indices_abandoned;
    EXPECT_EQ(executed + abandoned, 200u);
    EXPECT_GE(executed, 1u);  // the throwing index itself ran
  }
}

TEST(ThreadPool, StatsQueueHighWaterAndBusyTimeAdvance) {
  ThreadPool pool(2);
  std::atomic<int> sink{0};
  pool.parallel_for_index(256, [&](std::size_t) {
    // Enough work per index for the workers to pick up tasks.
    for (int i = 0; i < 1000; ++i) {
      sink.fetch_add(1, std::memory_order_relaxed);
    }
  });
  const ThreadPool::Stats s = pool.stats();
  EXPECT_EQ(s.indices_executed, 256u);
  // The loop submits one helper task per worker at most.
  EXPECT_LE(s.queue_high_water, 2u);
  EXPECT_LE(s.tasks_executed, 2u);
}

TEST(ForEachIndex, NullPoolRunsInlineInOrder) {
  std::vector<std::size_t> order;
  for_each_index(nullptr, 5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ForEachIndex, NullPoolPropagatesExceptions) {
  EXPECT_THROW(for_each_index(nullptr, 3,
                              [](std::size_t i) {
                                if (i == 1) throw std::runtime_error("inline");
                              }),
               std::runtime_error);
}

}  // namespace
}  // namespace rta
