// Tests for shared analysis plumbing: automatic horizons, result helpers,
// and configuration behavior common to all analyzers.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/result.hpp"
#include "analysis/spp_exact.hpp"

namespace rta {
namespace {

System one_job_system(double deadline, Time window, double period) {
  System sys(1, SchedulerKind::kSpp);
  Job j;
  j.name = "A";
  j.deadline = deadline;
  j.chain = {{0, 0.5, 1}};
  j.arrivals = ArrivalSequence::periodic(period, window);
  sys.add_job(std::move(j));
  return sys;
}

TEST(DefaultHorizon, ExplicitHorizonWins) {
  AnalysisConfig cfg;
  cfg.horizon = 123.0;
  EXPECT_DOUBLE_EQ(default_horizon(one_job_system(5.0, 40.0, 4.0), cfg),
                   123.0);
}

TEST(DefaultHorizon, PadsByDeadlinesAndWindowFraction) {
  AnalysisConfig cfg;
  cfg.horizon_padding_deadlines = 2.0;
  cfg.horizon_padding_fraction = 0.5;
  // window 40, deadline 5: padding = max(10, 20) = 20 -> 60.
  EXPECT_DOUBLE_EQ(default_horizon(one_job_system(5.0, 40.0, 4.0), cfg),
                   60.0);
  // Large deadline dominates: deadline 50 -> padding 100 -> 140.
  EXPECT_DOUBLE_EQ(default_horizon(one_job_system(50.0, 40.0, 4.0), cfg),
                   140.0);
}

TEST(DefaultHorizon, NeverBelowOne) {
  System sys(1, SchedulerKind::kSpp);
  Job j;
  j.name = "tiny";
  j.deadline = 1e-6;
  j.chain = {{0, 1e-7, 1}};
  j.arrivals = ArrivalSequence(std::vector<Time>{0.0});
  sys.add_job(std::move(j));
  AnalysisConfig cfg;
  EXPECT_GE(default_horizon(sys, cfg), 1.0);
}

TEST(AnalysisResult, AllSchedulableRequiresOkAndEveryJob) {
  AnalysisResult r;
  EXPECT_FALSE(r.all_schedulable());  // !ok
  r.ok = true;
  EXPECT_TRUE(r.all_schedulable());  // vacuously true with no jobs
  r.jobs.push_back({1.0, true, {}, {}});
  r.jobs.push_back({9.0, false, {}, {}});
  EXPECT_FALSE(r.all_schedulable());
  r.jobs[1].schedulable = true;
  EXPECT_TRUE(r.all_schedulable());
}

TEST(AnalysisResult, MaxWcrtSkipsNothing) {
  AnalysisResult r;
  r.ok = true;
  r.jobs.push_back({1.5, true, {}, {}});
  r.jobs.push_back({3.25, true, {}, {}});
  EXPECT_DOUBLE_EQ(r.max_wcrt(), 3.25);
  r.jobs.push_back({kTimeInfinity, false, {}, {}});
  EXPECT_TRUE(std::isinf(r.max_wcrt()));
}

TEST(AnalysisConfig, RecordCurvesDefaultsOff) {
  const System sys = one_job_system(5.0, 20.0, 4.0);
  const AnalysisResult r = ExactSppAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.jobs[0].hops[0].curves.empty());
}

TEST(AnalysisConfig, HorizonDoublingCapRespected) {
  // Overloaded system: with zero doublings the first horizon's verdict
  // stands (infinite wcrt); with more doublings the horizon grows but the
  // verdict stays unschedulable either way.
  System sys(1, SchedulerKind::kSpp);
  Job j;
  j.name = "over";
  j.deadline = 0.5;
  std::vector<Time> rel;
  for (int i = 0; i < 50; ++i) rel.push_back(0.4 * i);
  j.chain = {{0, 1.0, 1}};
  j.arrivals = ArrivalSequence(std::move(rel));
  sys.add_job(std::move(j));

  AnalysisConfig none;
  none.max_horizon_doublings = 0;
  const AnalysisResult r0 = ExactSppAnalyzer(none).analyze(sys);
  AnalysisConfig many;
  many.max_horizon_doublings = 4;
  const AnalysisResult r4 = ExactSppAnalyzer(many).analyze(sys);
  ASSERT_TRUE(r0.ok && r4.ok);
  EXPECT_FALSE(r0.all_schedulable());
  EXPECT_FALSE(r4.all_schedulable());
  EXPECT_GE(r4.horizon, r0.horizon);
}

}  // namespace
}  // namespace rta
