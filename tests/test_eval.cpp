// Tests for the evaluation harness: method plumbing, admission-probability
// experiments (reproducibility, monotonicity, method ordering), validation
// reports, and the CSV writer.
#include <gtest/gtest.h>

#include <sstream>

#include "eval/experiment.hpp"
#include "eval/validation.hpp"
#include "util/csv.hpp"

namespace rta {
namespace {

AdmissionConfig small_config() {
  AdmissionConfig cfg;
  cfg.shop.stages = 2;
  cfg.shop.processors_per_stage = 2;
  cfg.shop.jobs = 4;
  cfg.shop.window_periods = 5.0;
  cfg.shop.min_rate = 0.2;
  cfg.shop.deadline.period_multiple = 2.0;
  cfg.utilizations = {0.3, 0.8};
  cfg.methods = {Method::kSppExact, Method::kSpnpApp, Method::kFcfsApp};
  cfg.trials = 40;
  cfg.seed = 7;
  cfg.threads = 4;
  return cfg;
}

TEST(Methods, NamesAndSchedulers) {
  EXPECT_STREQ(method_name(Method::kSppExact), "SPP/Exact");
  EXPECT_STREQ(method_name(Method::kSppSL), "SPP/S&L");
  EXPECT_STREQ(method_name(Method::kSpnpApp), "SPNP/App");
  EXPECT_STREQ(method_name(Method::kFcfsApp), "FCFS/App");
  EXPECT_STREQ(method_name(Method::kSppApp), "SPP/App");
  EXPECT_EQ(method_scheduler(Method::kSppExact), SchedulerKind::kSpp);
  EXPECT_EQ(method_scheduler(Method::kSppSL), SchedulerKind::kSpp);
  EXPECT_EQ(method_scheduler(Method::kSpnpApp), SchedulerKind::kSpnp);
  EXPECT_EQ(method_scheduler(Method::kFcfsApp), SchedulerKind::kFcfs);
}

TEST(Admission, GridShapeAndTrials) {
  const AdmissionConfig cfg = small_config();
  const auto points = run_admission_experiment(cfg);
  ASSERT_EQ(points.size(), 6u);
  for (const AdmissionPoint& p : points) {
    EXPECT_EQ(p.trials, 40u);
    EXPECT_LE(p.admitted, p.trials);
    EXPECT_GE(p.probability(), 0.0);
    EXPECT_LE(p.probability(), 1.0);
  }
}

TEST(Admission, ReproducibleAcrossThreadCounts) {
  AdmissionConfig cfg = small_config();
  cfg.trials = 24;
  cfg.threads = 1;
  const auto serial = run_admission_experiment(cfg);
  cfg.threads = 8;
  const auto parallel = run_admission_experiment(cfg);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].admitted, parallel[i].admitted) << "point " << i;
  }
}

TEST(Admission, ProbabilityFallsWithUtilization) {
  const auto points = run_admission_experiment(small_config());
  // points are utilization-major: [u0 x 3 methods, u1 x 3 methods].
  for (std::size_t m = 0; m < 3; ++m) {
    EXPECT_GE(points[m].probability() + 1e-12, points[3 + m].probability())
        << "method " << method_name(points[m].method);
  }
}

TEST(Admission, ExactSppDominatesApproximateMethods) {
  // The exact SPP analysis admits at least as many sets as SPNP/App and
  // FCFS/App at every utilization (§5.2's consistent ordering).
  const auto points = run_admission_experiment(small_config());
  for (std::size_t u = 0; u < 2; ++u) {
    const auto& exact = points[u * 3 + 0];
    const auto& spnp = points[u * 3 + 1];
    const auto& fcfs = points[u * 3 + 2];
    EXPECT_GE(exact.admitted, spnp.admitted);
    EXPECT_GE(exact.admitted, fcfs.admitted);
  }
}

TEST(Admission, HolisticNeverBeatsExact) {
  AdmissionConfig cfg = small_config();
  cfg.methods = {Method::kSppExact, Method::kSppSL};
  cfg.trials = 30;
  const auto points = run_admission_experiment(cfg);
  for (std::size_t u = 0; u < 2; ++u) {
    EXPECT_GE(points[u * 2 + 0].admitted, points[u * 2 + 1].admitted);
  }
}

TEST(Admission, HolisticInapplicableToAperiodicCountsAsReject) {
  AdmissionConfig cfg = small_config();
  cfg.shop.pattern = ArrivalPattern::kAperiodic;
  cfg.methods = {Method::kSppSL};
  cfg.trials = 10;
  cfg.utilizations = {0.2};
  const auto points = run_admission_experiment(cfg);
  EXPECT_EQ(points[0].admitted, 0u);
}

TEST(Validation, ReportSlackAndBoundsHold) {
  ValidationReport rep;
  rep.jobs.push_back({"A", 5.0, 2.0, 3.0});
  rep.jobs.push_back({"B", 5.0, 1.0, 4.0});
  EXPECT_DOUBLE_EQ(rep.min_slack(), 1.0);
  EXPECT_DOUBLE_EQ(rep.max_slack(), 3.0);
  EXPECT_TRUE(rep.bounds_hold());
  rep.jobs.push_back({"C", 5.0, 4.0, 3.5});
  EXPECT_FALSE(rep.bounds_hold());
}

TEST(Validation, InfiniteBoundNeverViolates) {
  ValidationReport rep;
  rep.jobs.push_back({"A", 5.0, 2.0, kTimeInfinity});
  EXPECT_TRUE(rep.bounds_hold());
  // But an unfinished simulation with a finite bound does violate.
  ValidationReport bad;
  bad.jobs.push_back({"A", 5.0, kTimeInfinity, 3.0});
  EXPECT_FALSE(bad.bounds_hold());
}

TEST(Csv, QuotingAndLayout) {
  CsvWriter w({"name", "value"});
  w.add(std::string("plain"), 1.5);
  w.add(std::string("com,ma"), 2);
  w.add(std::string("qu\"ote"), 3);
  std::ostringstream ss;
  w.write(ss);
  EXPECT_EQ(ss.str(),
            "name,value\nplain,1.5\n\"com,ma\",2\n\"qu\"\"ote\",3\n");
  EXPECT_EQ(w.row_count(), 3u);
}

}  // namespace
}  // namespace rta
