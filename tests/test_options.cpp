// Tests for the CLI option parser used by every bench/example binary.
#include <gtest/gtest.h>

#include <vector>

#include "util/options.hpp"

namespace rta {
namespace {

Options parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Options::parse(static_cast<int>(args.size()),
                        const_cast<char**>(args.data()));
}

TEST(Options, KeyEqualsValueForm) {
  const Options o = parse({"--trials=50", "--util=0.7"});
  EXPECT_EQ(o.get_int("trials", 0), 50);
  EXPECT_DOUBLE_EQ(o.get_double("util", 0.0), 0.7);
}

TEST(Options, KeySpaceValueForm) {
  const Options o = parse({"--trials", "50", "--name", "hello"});
  EXPECT_EQ(o.get_int("trials", 0), 50);
  EXPECT_EQ(o.get("name", ""), "hello");
}

TEST(Options, BareFlagIsTrue) {
  const Options o = parse({"--aperiodic", "--trials", "10"});
  EXPECT_TRUE(o.get_bool("aperiodic", false));
  EXPECT_EQ(o.get_int("trials", 0), 10);
}

TEST(Options, BoolRecognizesFalseSpellings) {
  EXPECT_FALSE(parse({"--x", "0"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x", "false"}).get_bool("x", true));
  EXPECT_TRUE(parse({"--x", "1"}).get_bool("x", false));
}

TEST(Options, DefaultsWhenMissingOrMalformed) {
  const Options o = parse({"--n", "abc"});
  EXPECT_EQ(o.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(o.get_double("n", 1.5), 1.5);
  EXPECT_EQ(o.get_int("absent", 3), 3);
  EXPECT_FALSE(o.has("absent"));
  EXPECT_TRUE(o.has("n"));
}

TEST(Options, NegativeNumbersAsValues) {
  const Options o = parse({"--offset", "-4"});
  EXPECT_EQ(o.get_int("offset", 0), -4);
}

TEST(Options, PositionalArguments) {
  const Options o = parse({"file.rts", "--verbose"});
  ASSERT_EQ(o.positional().size(), 1u);
  EXPECT_EQ(o.positional()[0], "file.rts");
  EXPECT_TRUE(o.get_bool("verbose", false));
}

TEST(Options, FlagGreedilyConsumesFollowingBareToken) {
  // Documented greediness: "--flag token" binds token as the flag's value;
  // use --flag=1 before positional arguments to avoid it.
  const Options o = parse({"--verbose", "other.txt"});
  EXPECT_TRUE(o.positional().empty());
  EXPECT_EQ(o.get("verbose", ""), "other.txt");
  EXPECT_TRUE(o.get_bool("verbose", false));  // still truthy
  const Options p = parse({"--verbose=1", "other.txt"});
  ASSERT_EQ(p.positional().size(), 1u);
}

TEST(Options, LastOccurrenceWins) {
  const Options o = parse({"--n", "1", "--n", "2"});
  EXPECT_EQ(o.get_int("n", 0), 2);
}

}  // namespace
}  // namespace rta
