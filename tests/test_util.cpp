// Unit tests for util/: tolerant time arithmetic, RNG streams, statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/time.hpp"

namespace rta {
namespace {

TEST(TimeTolerance, EqualityWithinEpsilon) {
  EXPECT_TRUE(time_eq(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(time_eq(1.0, 1.0 - 1e-12));
  EXPECT_FALSE(time_eq(1.0, 1.0 + 1e-6));
  EXPECT_TRUE(time_eq(0.0, 0.0));
  EXPECT_TRUE(time_eq(1e9, 1e9 * (1.0 + 1e-13)));
}

TEST(TimeTolerance, StrictOrderRespectsEpsilon) {
  EXPECT_TRUE(time_lt(1.0, 2.0));
  EXPECT_FALSE(time_lt(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(time_le(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(time_ge(1.0 + 1e-12, 1.0));
  EXPECT_FALSE(time_gt(1.0 + 1e-12, 1.0));
}

TEST(TimeTolerance, InfinityHandling) {
  EXPECT_TRUE(time_eq(kTimeInfinity, kTimeInfinity));
  EXPECT_FALSE(time_eq(kTimeInfinity, 1.0));
  EXPECT_TRUE(time_lt(1.0, kTimeInfinity));
}

TEST(TolerantFloor, CountsEpsilonBelowInteger) {
  EXPECT_EQ(tolerant_floor(3.0), 3);
  EXPECT_EQ(tolerant_floor(2.9999999996), 3);
  EXPECT_EQ(tolerant_floor(2.9), 2);
  EXPECT_EQ(tolerant_floor(-0.0000000001), 0);
  EXPECT_EQ(tolerant_floor(-1.0000000001), -1);
}

TEST(TolerantCeil, IgnoresEpsilonAboveInteger) {
  EXPECT_EQ(tolerant_ceil(3.0), 3);
  EXPECT_EQ(tolerant_ceil(3.0000000004), 3);
  EXPECT_EQ(tolerant_ceil(3.1), 4);
}

TEST(ClampNonnegative, OnlyClampsNoise) {
  EXPECT_EQ(clamp_nonnegative(-1e-12), 0.0);
  EXPECT_EQ(clamp_nonnegative(-1.0), -1.0);
  EXPECT_EQ(clamp_nonnegative(2.0), 2.0);
}

TEST(Rng, StreamsAreDeterministic) {
  RngFactory f(123);
  Rng a = f.stream(7);
  Rng b = f.stream(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, StreamsAreIndependentAcrossIndices) {
  RngFactory f(123);
  Rng a = f.stream(1);
  Rng b = f.stream(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformOpenAvoidsEndpoints) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_open(0.0, 1.0);
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, GammaMeanVarianceMatchMoments) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.gamma_mean_var(4.0, 8.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
  EXPECT_NEAR(stats.variance(), 8.0, 0.4);
}

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats s;
  const double xs[] = {1.0, 2.0, 3.0, 4.0, 10.0};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_NEAR(s.variance(), 12.5, 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Quantile, InterpolatesLinearly) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(WilsonHalfWidth, ShrinksWithTrials) {
  const double w100 = wilson_half_width(50, 100);
  const double w10000 = wilson_half_width(5000, 10000);
  EXPECT_GT(w100, w10000);
  EXPECT_GT(w100, 0.0);
  EXPECT_LT(w100, 0.15);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h = 0;
  pool.parallel_for_index(1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForHandlesEmptyAndSingle) {
  ThreadPool pool(2);
  pool.parallel_for_index(0, [](std::size_t) { FAIL(); });
  std::atomic<int> n{0};
  pool.parallel_for_index(1, [&](std::size_t) { n++; });
  EXPECT_EQ(n.load(), 1);
}

TEST(ThreadPool, ManyMoreTasksThanWorkers) {
  ThreadPool pool(3);
  std::atomic<long long> sum{0};
  pool.parallel_for_index(10000, [&](std::size_t i) {
    sum += static_cast<long long>(i);
  });
  EXPECT_EQ(sum.load(), 10000LL * 9999 / 2);
}

}  // namespace
}  // namespace rta
