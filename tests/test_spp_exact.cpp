// Tests for the exact SPP analysis (§4.1): hand-checked response times,
// Theorem 1/2/3 semantics, and exact agreement with the simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/spp_exact.hpp"
#include "sim/simulator.hpp"

namespace rta {
namespace {

Job make_job(const std::string& name, double deadline,
             std::vector<Subjob> chain, std::vector<Time> releases) {
  Job j;
  j.name = name;
  j.deadline = deadline;
  j.chain = std::move(chain);
  j.arrivals = ArrivalSequence(std::move(releases));
  return j;
}

TEST(SppExact, SingleJobSingleHop) {
  System sys(1, SchedulerKind::kSpp);
  sys.add_job(make_job("A", 10.0, {{0, 2.0, 1}}, {0.0, 5.0, 10.0}));
  const AnalysisResult r = ExactSppAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.jobs[0].wcrt, 2.0);
  EXPECT_TRUE(r.jobs[0].schedulable);
  ASSERT_EQ(r.jobs[0].per_instance.size(), 3u);
  for (Time t : r.jobs[0].per_instance) EXPECT_DOUBLE_EQ(t, 2.0);
}

TEST(SppExact, PreemptionDelaysLowPriority) {
  // Low (prio 2, tau 4) at 0; High (prio 1, tau 1) at 1.
  // Low completes at 5 -> response 5; High at 2 -> response 1.
  System sys(1, SchedulerKind::kSpp);
  sys.add_job(make_job("Low", 10.0, {{0, 4.0, 2}}, {0.0}));
  sys.add_job(make_job("High", 10.0, {{0, 1.0, 1}}, {1.0}));
  const AnalysisResult r = ExactSppAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.jobs[0].wcrt, 5.0);
  EXPECT_DOUBLE_EQ(r.jobs[1].wcrt, 1.0);
}

TEST(SppExact, BacklogAcrossInstances) {
  // tau 3 released every 2: queueing builds up (finite trace).
  System sys(1, SchedulerKind::kSpp);
  sys.add_job(make_job("A", 100.0, {{0, 3.0, 1}}, {0.0, 2.0, 4.0}));
  const AnalysisResult r = ExactSppAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  // Completions at 3, 6, 9 -> responses 3, 4, 5.
  ASSERT_EQ(r.jobs[0].per_instance.size(), 3u);
  EXPECT_DOUBLE_EQ(r.jobs[0].per_instance[0], 3.0);
  EXPECT_DOUBLE_EQ(r.jobs[0].per_instance[1], 4.0);
  EXPECT_DOUBLE_EQ(r.jobs[0].per_instance[2], 5.0);
  EXPECT_DOUBLE_EQ(r.jobs[0].wcrt, 5.0);
}

TEST(SppExact, TwoHopPipeline) {
  // Theorem 1 across processors with direct synchronization.
  System sys(2, SchedulerKind::kSpp);
  sys.add_job(
      make_job("A", 50.0, {{0, 0.5, 1}, {1, 2.0, 1}}, {0.0, 1.0, 2.0}));
  const AnalysisResult r = ExactSppAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  // Hop-2 completions 2.5, 4.5, 6.5 -> responses 2.5, 3.5, 4.5.
  EXPECT_DOUBLE_EQ(r.jobs[0].per_instance[0], 2.5);
  EXPECT_DOUBLE_EQ(r.jobs[0].per_instance[1], 3.5);
  EXPECT_DOUBLE_EQ(r.jobs[0].per_instance[2], 4.5);
  EXPECT_DOUBLE_EQ(r.jobs[0].wcrt, 4.5);
}

TEST(SppExact, CrossProcessorInterference) {
  // Job A's second hop shares P1 with job B at higher priority; B's arrivals
  // at P1 are its own first-hop departures.
  System sys(2, SchedulerKind::kSpp);
  sys.add_job(make_job("A", 50.0, {{0, 1.0, 1}, {1, 2.0, 2}}, {0.0}));
  sys.add_job(make_job("B", 50.0, {{1, 3.0, 1}}, {0.5}));
  const AnalysisResult r = ExactSppAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  // A hop1 done at 1; A hop2 released at 1 but B (prio 1) runs [0.5, 3.5];
  // A hop2 runs [3.5, 5.5] -> response 5.5.
  EXPECT_DOUBLE_EQ(r.jobs[0].wcrt, 5.5);
  EXPECT_DOUBLE_EQ(r.jobs[1].wcrt, 3.0);
}

TEST(SppExact, RecordsCurvesWhenAsked) {
  AnalysisConfig cfg;
  cfg.record_curves = true;
  System sys(1, SchedulerKind::kSpp);
  sys.add_job(make_job("A", 10.0, {{0, 2.0, 1}}, {0.0}));
  const AnalysisResult r = ExactSppAnalyzer(cfg).analyze(sys);
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.jobs[0].hops.size(), 1u);
  ASSERT_EQ(r.jobs[0].hops[0].curves.size(), 1u);
  const SubjobCurves& c = r.jobs[0].hops[0].curves[0];
  EXPECT_DOUBLE_EQ(c.service_upper.eval(1.0), 1.0);
  EXPECT_DOUBLE_EQ(c.departure_lower.eval(2.0), 1.0);
}

TEST(SppExact, RejectsNonSppSystems) {
  System sys(1, SchedulerKind::kFcfs);
  sys.add_job(make_job("A", 10.0, {{0, 2.0, 1}}, {0.0}));
  const AnalysisResult r = ExactSppAnalyzer().analyze(sys);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST(SppExact, RejectsCyclicTopology) {
  System sys(2, SchedulerKind::kSpp);
  sys.add_job(make_job("Tk", 10.0, {{0, 1.0, 2}, {1, 1.0, 1}}, {0.0}));
  sys.add_job(make_job("Tn", 10.0, {{1, 1.0, 2}, {0, 1.0, 1}}, {0.0}));
  const AnalysisResult r = ExactSppAnalyzer().analyze(sys);
  EXPECT_FALSE(r.ok);
}

TEST(SppExact, UnschedulableOverloadReportsInfinity) {
  // Utilization > 1: the backlog grows without bound; the tail instances
  // cannot be bounded even after horizon doubling.
  System sys(1, SchedulerKind::kSpp);
  std::vector<Time> rel;
  for (int i = 0; i < 40; ++i) rel.push_back(0.5 * i);
  sys.add_job(make_job("A", 1.0, {{0, 1.0, 1}}, std::move(rel)));
  const AnalysisResult r = ExactSppAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.jobs[0].schedulable);
  // The worst instance response is 20-ish (finite trace), way over deadline.
  EXPECT_GT(r.jobs[0].wcrt, 10.0);
}

TEST(SppExact, AgreesWithSimulatorOnHandBuiltSystem) {
  System sys(2, SchedulerKind::kSpp);
  sys.add_job(make_job("A", 50.0, {{0, 1.0, 1}, {1, 2.0, 2}}, {0.0, 4.0}));
  sys.add_job(make_job("B", 50.0, {{0, 0.5, 2}, {1, 1.0, 1}}, {0.5, 4.5}));
  const AnalysisResult r = ExactSppAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  const SimResult s = simulate(sys, r.horizon);
  ASSERT_TRUE(s.all_completed);
  for (int k = 0; k < sys.job_count(); ++k) {
    ASSERT_EQ(r.jobs[k].per_instance.size(), s.traces[k].size());
    for (std::size_t m = 0; m < s.traces[k].size(); ++m) {
      EXPECT_NEAR(r.jobs[k].per_instance[m], s.traces[k][m].response(), 1e-9)
          << "job " << k << " instance " << m;
    }
  }
}

}  // namespace
}  // namespace rta
