// Unit tests for the discrete-event simulator: hand-checked schedules under
// SPP (preemption), SPNP (blocking), FCFS (arrival order), and direct
// synchronization across processors.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulator.hpp"

namespace rta {
namespace {

Job make_job(const std::string& name, double deadline,
             std::vector<Subjob> chain, std::vector<Time> releases) {
  Job j;
  j.name = name;
  j.deadline = deadline;
  j.chain = std::move(chain);
  j.arrivals = ArrivalSequence(std::move(releases));
  return j;
}

TEST(Simulator, SingleJobRunsToCompletion) {
  System sys(1, SchedulerKind::kSpp);
  sys.add_job(make_job("A", 10.0, {{0, 2.0, 1}}, {0.0, 5.0}));
  const SimResult r = simulate(sys, 20.0);
  ASSERT_TRUE(r.all_completed);
  EXPECT_DOUBLE_EQ(r.traces[0][0].hop_complete[0], 2.0);
  EXPECT_DOUBLE_EQ(r.traces[0][1].hop_complete[0], 7.0);
  EXPECT_DOUBLE_EQ(r.worst_response[0], 2.0);
}

TEST(Simulator, SppPreemptsLowerPriority) {
  // Low (prio 2, tau 4) released at 0; High (prio 1, tau 1) at t = 1.
  // Low runs [0,1] and [2,5]; High runs [1,2].
  System sys(1, SchedulerKind::kSpp);
  sys.add_job(make_job("Low", 10.0, {{0, 4.0, 2}}, {0.0}));
  sys.add_job(make_job("High", 10.0, {{0, 1.0, 1}}, {1.0}));
  const SimResult r = simulate(sys, 20.0);
  ASSERT_TRUE(r.all_completed);
  EXPECT_DOUBLE_EQ(r.traces[1][0].hop_complete[0], 2.0);
  EXPECT_DOUBLE_EQ(r.traces[0][0].hop_complete[0], 5.0);
  // Low's service splits into two segments around the preemption.
  ASSERT_EQ(r.segments[0][0].size(), 2u);
  EXPECT_DOUBLE_EQ(r.segments[0][0][0].begin, 0.0);
  EXPECT_DOUBLE_EQ(r.segments[0][0][0].end, 1.0);
  EXPECT_DOUBLE_EQ(r.segments[0][0][1].begin, 2.0);
  EXPECT_DOUBLE_EQ(r.segments[0][0][1].end, 5.0);
}

TEST(Simulator, SpnpDoesNotPreempt) {
  // Same setup under SPNP: Low finishes at 4 before High starts.
  System sys(1, SchedulerKind::kSpnp);
  sys.add_job(make_job("Low", 10.0, {{0, 4.0, 2}}, {0.0}));
  sys.add_job(make_job("High", 10.0, {{0, 1.0, 1}}, {1.0}));
  const SimResult r = simulate(sys, 20.0);
  ASSERT_TRUE(r.all_completed);
  EXPECT_DOUBLE_EQ(r.traces[0][0].hop_complete[0], 4.0);
  EXPECT_DOUBLE_EQ(r.traces[1][0].hop_complete[0], 5.0);
}

TEST(Simulator, SpnpPicksHighestPriorityWhenFree) {
  // Three released while the processor is busy: served in priority order
  // after the running one completes.
  System sys(1, SchedulerKind::kSpnp);
  sys.add_job(make_job("First", 20.0, {{0, 3.0, 3}}, {0.0}));
  sys.add_job(make_job("Mid", 20.0, {{0, 1.0, 2}}, {1.0}));
  sys.add_job(make_job("Top", 20.0, {{0, 1.0, 1}}, {2.0}));
  const SimResult r = simulate(sys, 30.0);
  ASSERT_TRUE(r.all_completed);
  EXPECT_DOUBLE_EQ(r.traces[0][0].hop_complete[0], 3.0);
  EXPECT_DOUBLE_EQ(r.traces[2][0].hop_complete[0], 4.0);  // Top before Mid
  EXPECT_DOUBLE_EQ(r.traces[1][0].hop_complete[0], 5.0);
}

TEST(Simulator, FcfsServesInArrivalOrder) {
  System sys(1, SchedulerKind::kFcfs);
  sys.add_job(make_job("A", 20.0, {{0, 2.0, 0}}, {0.5}));
  sys.add_job(make_job("B", 20.0, {{0, 1.0, 0}}, {0.0}));
  const SimResult r = simulate(sys, 30.0);
  ASSERT_TRUE(r.all_completed);
  EXPECT_DOUBLE_EQ(r.traces[1][0].hop_complete[0], 1.0);  // B first
  EXPECT_DOUBLE_EQ(r.traces[0][0].hop_complete[0], 3.0);
}

TEST(Simulator, FcfsTieBreaksByJobIndex) {
  System sys(1, SchedulerKind::kFcfs);
  sys.add_job(make_job("A", 20.0, {{0, 1.0, 0}}, {0.0}));
  sys.add_job(make_job("B", 20.0, {{0, 1.0, 0}}, {0.0}));
  const SimResult r = simulate(sys, 30.0);
  EXPECT_DOUBLE_EQ(r.traces[0][0].hop_complete[0], 1.0);
  EXPECT_DOUBLE_EQ(r.traces[1][0].hop_complete[0], 2.0);
}

TEST(Simulator, DirectSynchronizationChainsHops) {
  System sys(2, SchedulerKind::kSpp);
  sys.add_job(make_job("A", 20.0, {{0, 1.0, 1}, {1, 2.0, 1}}, {0.0, 3.0}));
  const SimResult r = simulate(sys, 30.0);
  ASSERT_TRUE(r.all_completed);
  EXPECT_DOUBLE_EQ(r.traces[0][0].hop_release[1], 1.0);
  EXPECT_DOUBLE_EQ(r.traces[0][0].hop_complete[1], 3.0);
  EXPECT_DOUBLE_EQ(r.traces[0][1].hop_release[1], 4.0);
  EXPECT_DOUBLE_EQ(r.traces[0][1].hop_complete[1], 6.0);
  EXPECT_DOUBLE_EQ(r.worst_response[0], 3.0);
}

TEST(Simulator, PipelinedInstancesQueuePerHop) {
  // Period 1 at hop 1 of length 2: instances back up at the second hop.
  System sys(2, SchedulerKind::kSpp);
  sys.add_job(
      make_job("A", 50.0, {{0, 0.5, 1}, {1, 2.0, 1}}, {0.0, 1.0, 2.0}));
  const SimResult r = simulate(sys, 50.0);
  ASSERT_TRUE(r.all_completed);
  // Hop-2 completions: 2.5, 4.5, 6.5 (the hop-2 server is the bottleneck).
  EXPECT_DOUBLE_EQ(r.traces[0][0].hop_complete[1], 2.5);
  EXPECT_DOUBLE_EQ(r.traces[0][1].hop_complete[1], 4.5);
  EXPECT_DOUBLE_EQ(r.traces[0][2].hop_complete[1], 6.5);
  EXPECT_DOUBLE_EQ(r.worst_response[0], 4.5);
}

TEST(Simulator, IncompleteInstancesReportInfinity) {
  System sys(1, SchedulerKind::kSpp);
  sys.add_job(make_job("A", 10.0, {{0, 5.0, 1}}, {0.0, 1.0}));
  const SimResult r = simulate(sys, 6.0);  // second instance can't finish
  EXPECT_FALSE(r.all_completed);
  EXPECT_TRUE(std::isinf(r.worst_response[0]));
  EXPECT_DOUBLE_EQ(r.traces[0][0].hop_complete[0], 5.0);
  EXPECT_TRUE(std::isinf(r.traces[0][1].hop_complete[0]));
}

TEST(Simulator, ServiceCurveAccumulatesSegments) {
  System sys(1, SchedulerKind::kSpp);
  sys.add_job(make_job("Low", 10.0, {{0, 4.0, 2}}, {0.0}));
  sys.add_job(make_job("High", 10.0, {{0, 1.0, 1}}, {1.0}));
  const SimResult r = simulate(sys, 10.0);
  const PwlCurve s = r.service_curve({0, 0});
  EXPECT_DOUBLE_EQ(s.eval(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.eval(1.0), 1.0);
  EXPECT_DOUBLE_EQ(s.eval(2.0), 1.0);  // preempted
  EXPECT_DOUBLE_EQ(s.eval(3.0), 2.0);
  EXPECT_DOUBLE_EQ(s.eval(5.0), 4.0);
  EXPECT_DOUBLE_EQ(s.eval(10.0), 4.0);
  EXPECT_TRUE(s.is_nondecreasing());
  EXPECT_TRUE(s.is_continuous());
}

TEST(Simulator, DepartureCurveMatchesCompletions) {
  System sys(1, SchedulerKind::kSpp);
  sys.add_job(make_job("A", 10.0, {{0, 2.0, 1}}, {0.0, 5.0}));
  const SimResult r = simulate(sys, 20.0);
  const PwlCurve dep = r.departure_curve({0, 0});
  EXPECT_DOUBLE_EQ(dep.eval(1.9), 0.0);
  EXPECT_DOUBLE_EQ(dep.eval(2.0), 1.0);
  EXPECT_DOUBLE_EQ(dep.eval(7.0), 2.0);
}

TEST(Simulator, SimultaneousCompletionAndRelease) {
  // Hop 1 completes exactly when another job arrives at the same processor:
  // the completion is processed first, then the scheduler picks by priority.
  System sys(1, SchedulerKind::kSpp);
  sys.add_job(make_job("A", 20.0, {{0, 2.0, 2}}, {0.0}));
  sys.add_job(make_job("B", 20.0, {{0, 1.0, 1}}, {2.0}));
  const SimResult r = simulate(sys, 20.0);
  EXPECT_DOUBLE_EQ(r.traces[0][0].hop_complete[0], 2.0);
  EXPECT_DOUBLE_EQ(r.traces[1][0].hop_complete[0], 3.0);
}

}  // namespace
}  // namespace rta
