// Differential and policy tests for the batching RequestScheduler
// (service/request_scheduler.hpp). The central contract: with timeouts and
// backpressure disabled, the scheduler's response stream is byte-identical
// (modulo the latency_us field) to the sequential reference runner for ANY
// request stream -- including malformed lines, unknown ops, duplicate ids,
// and invalid removals -- at every read fan-out width. On top of that, the
// shedding and expiry policies themselves are exercised directly.
//
// Suites are named Service* so the CI thread-sanitizer job picks them up
// (.github/workflows/ci.yml filters on the Service prefix).
#include <chrono>
#include <cstdint>
#include <regex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/json.hpp"
#include "model/priority.hpp"
#include "service/admission_session.hpp"
#include "service/request_runner.hpp"
#include "service/request_scheduler.hpp"
#include "util/rng.hpp"
#include "workload/jobshop.hpp"

namespace rta {
namespace {

using service::AdmissionSession;
using service::RequestScheduler;
using service::RunnerStats;
using service::SessionConfig;
using service::StreamOptions;

System make_base(std::uint64_t seed) {
  Rng rng(seed);
  JobShopConfig cfg;
  cfg.stages = 2;
  cfg.processors_per_stage = 2;
  cfg.jobs = 3;
  cfg.utilization = 0.4;
  cfg.window_periods = 4.0;
  cfg.deadline.period_multiple = 3.0;
  cfg.scheduler = SchedulerKind::kSpp;
  System system = generate_jobshop(cfg, rng);
  assign_proportional_deadline_monotonic(system);
  return system;
}

SessionConfig make_session_config(const System& base) {
  SessionConfig cfg;
  // Pin the horizon so candidate edits can take the incremental (and fast
  // what-if) paths -- the regime the scheduler is built for.
  cfg.analysis.horizon = 4.0 * default_horizon(base, AnalysisConfig{});
  return cfg;
}

/// Serialize a job request, optionally without explicit priorities (so the
/// service's lowest-priority policy kicks in) and without an explicit id.
std::string job_request(const std::string& op, const Job& job,
                        bool with_priority) {
  json::Value req;
  req.set("op", op);
  json::Value jv;
  if (job.id != 0) jv.set("id", static_cast<double>(job.id));
  jv.set("name", job.name);
  jv.set("deadline", job.deadline);
  json::Value::Array chain;
  for (const Subjob& s : job.chain) {
    json::Value hop;
    hop.set("processor", s.processor);
    hop.set("exec", s.exec_time);
    if (with_priority) hop.set("priority", s.priority);
    chain.push_back(std::move(hop));
  }
  jv.set("chain", json::Value(std::move(chain)));
  json::Value::Array arrivals;
  for (Time t : job.arrivals.releases()) arrivals.push_back(json::Value(t));
  jv.set("arrivals", json::Value(std::move(arrivals)));
  req.set("job", std::move(jv));
  return req.dump();
}

Job random_candidate(Rng& rng, const System& base, int serial) {
  Job job;
  job.name = "cand" + std::to_string(serial);
  const int hops = rng.uniform_int(1, 3);
  double exec_total = 0.0;
  for (int h = 0; h < hops; ++h) {
    Subjob s;
    s.processor = rng.uniform_int(0, base.processor_count() - 1);
    s.exec_time = rng.uniform(0.02, 0.1);
    exec_total += s.exec_time;
    job.chain.push_back(s);
  }
  const Time period = rng.uniform(1.0, 4.0);
  job.arrivals = ArrivalSequence::periodic(
      period, std::max<Time>(base.last_release(), 4.0 * period));
  job.deadline = exec_total * rng.uniform(4.0, 20.0) + period;
  return job;
}

/// A randomized stream of ~`n` requests, `read_fraction` of them read-only,
/// salted with every malformed-input shape the runner must survive.
std::string build_stream(Rng& rng, const System& base, int n,
                         double read_fraction) {
  std::ostringstream out;
  std::string last_read;  // re-issued verbatim to exercise read coalescing
  for (int i = 0; i < n; ++i) {
    const double r = rng.uniform(0.0, 1.0);
    if (i % 17 == 5) {
      // Error salt: one malformed shape each pass through the stream.
      // stats belongs here: these sessions carry no metrics registry, so
      // both drivers answer it with the same deterministic error.
      switch (rng.uniform_int(0, 6)) {
        case 0: out << "{not json at all\n"; continue;
        case 1: out << "{\"no_op\": 1}\n"; continue;
        case 2: out << "{\"op\": \"frobnicate\"}\n"; continue;
        case 3: out << "{\"op\": \"what_if\", \"job\": {\"name\": \"x\"}}\n"; continue;
        case 4: out << "{\"op\": \"remove\"}\n"; continue;
        case 5: out << "{\"op\": \"stats\"}\n"; continue;
        default: out << "# comment line\n\n"; continue;
      }
    }
    if (r < read_fraction) {
      if (!last_read.empty() && rng.uniform_int(0, 3) == 0) {
        // A polling client re-submitting a byte-identical read: the
        // scheduler coalesces these, which must stay invisible in the
        // responses (auto ids still advance per instance).
        out << last_read << "\n";
      } else if (rng.uniform_int(0, 9) == 0) {
        last_read = "{\"op\": \"query\"}";
        out << last_read << "\n";
      } else {
        Job job = random_candidate(rng, base, i);
        if (rng.uniform_int(0, 7) == 0) {
          job.id = static_cast<std::uint64_t>(rng.uniform_int(1, 4));
        }  // sometimes an explicit (often duplicate) id
        last_read = job_request("what_if", job, /*with_priority=*/false);
        out << last_read << "\n";
      }
    } else if (rng.uniform_int(0, 2) == 0) {
      // Removals by a guessed id or name: sometimes valid, often not.
      if (rng.uniform_int(0, 1) == 0) {
        out << "{\"op\": \"remove\", \"job_id\": " << rng.uniform_int(1, 12)
            << "}\n";
      } else {
        out << "{\"op\": \"remove\", \"name\": \"cand"
            << rng.uniform_int(0, n) << "\"}\n";
      }
    } else {
      out << job_request("admit", random_candidate(rng, base, i),
                         /*with_priority=*/false)
          << "\n";
    }
  }
  return out.str();
}

std::string strip_latency(const std::string& responses) {
  static const std::regex latency(",\"latency_us\":[^,}]*");
  return std::regex_replace(responses, latency, "");
}

RunnerStats run_sequential(const System& base, const std::string& stream,
                           std::string& responses) {
  AdmissionSession session(base, make_session_config(base));
  std::istringstream in(stream);
  std::ostringstream out;
  const RunnerStats stats = service::run_request_stream(session, in, out);
  responses = out.str();
  return stats;
}

RunnerStats run_scheduled(const System& base, const std::string& stream,
                          const StreamOptions& options,
                          std::string& responses) {
  AdmissionSession session(base, make_session_config(base));
  std::istringstream in(stream);
  std::ostringstream out;
  const RunnerStats stats =
      service::run_request_stream(session, in, out, options);
  responses = out.str();
  return stats;
}

/// The acceptance bar: byte-identical payloads at 1, 2, and hardware
/// threads, for streams mixing reads, mutations, and malformed input.
TEST(ServiceScheduler, DifferentialMatchesSequentialRunner) {
  const RngFactory factory(0xD1FFBA7C);
  const int widths[] = {1, 2, 0};  // 0 resolves to hardware concurrency
  int total_coalesced = 0;
  for (int trial = 0; trial < 3; ++trial) {
    const System base = make_base(100 + static_cast<std::uint64_t>(trial));
    Rng rng = factory.stream(static_cast<std::uint64_t>(trial));
    const std::string stream =
        build_stream(rng, base, /*n=*/60, /*read_fraction=*/0.8);

    std::string expected;
    const RunnerStats ref = run_sequential(base, stream, expected);
    ASSERT_GT(ref.requests, 0);
    const std::string expected_stripped = strip_latency(expected);

    for (const int width : widths) {
      StreamOptions options;
      options.parallel_reads = width;
      std::string got;
      const RunnerStats stats = run_scheduled(base, stream, options, got);
      EXPECT_EQ(strip_latency(got), expected_stripped)
          << "trial " << trial << " parallel_reads " << width;
      EXPECT_EQ(stats.requests, ref.requests) << "parallel_reads " << width;
      EXPECT_EQ(stats.errors, ref.errors) << "parallel_reads " << width;
      EXPECT_EQ(stats.rejected, 0);
      EXPECT_EQ(stats.timeouts, 0);
      total_coalesced += stats.coalesced;
    }
    EXPECT_EQ(ref.coalesced, 0);  // the sequential runner never coalesces
  }
  // The streams contain verbatim-repeated reads, so coalescing must have
  // fired somewhere -- and stayed invisible in the byte comparison above.
  EXPECT_GT(total_coalesced, 0);
}

/// Duplicate reads in one batch execute once and answer per-instance: auto
/// ids advance exactly as they would sequentially, request/line echoes stay
/// per-request, and the payload bytes cannot tell the difference.
TEST(ServiceScheduler, CoalescesDuplicateReadsBitIdentically) {
  const System base = make_base(11);
  Rng rng(0xC0A1E5CE);
  const Job cand = random_candidate(rng, base, 0);
  const std::string what_if =
      job_request("what_if", cand, /*with_priority=*/false);
  std::ostringstream s;
  s << "{\"op\": \"query\"}\n"
    << what_if << "\n"
    << what_if << "\n"
    << what_if << "\n"
    << "{\"op\": \"query\"}\n";
  const std::string stream = s.str();

  std::string expected;
  const RunnerStats ref = run_sequential(base, stream, expected);
  EXPECT_EQ(ref.coalesced, 0);

  StreamOptions options;  // width 1: coalescing is width-independent
  std::string got;
  const RunnerStats stats = run_scheduled(base, stream, options, got);
  EXPECT_EQ(strip_latency(got), strip_latency(expected));
  EXPECT_EQ(stats.requests, 5);
  EXPECT_EQ(stats.coalesced, 3);  // one query + two what_if duplicates
}

/// Satellite: a stream of nothing but malformed lines, unknown ops, and
/// invalid ids completes with one {"ok":false} response per line -- the
/// stream is never terminated early.
TEST(ServiceScheduler, ErrorStreamCompletesWithPerLineResponses) {
  const System base = make_base(7);
  const std::string stream =
      "{broken\n"
      "\n"
      "# skipped comment\n"
      "{\"op\": 42}\n"
      "{\"op\": \"frobnicate\"}\n"
      "{\"op\": \"what_if\"}\n"
      "{\"op\": \"what_if\", \"job\": {\"name\": \"x\"}}\n"
      "{\"op\": \"remove\"}\n"
      "{\"op\": \"remove\", \"job_id\": 424242}\n"
      "{\"op\": \"remove\", \"name\": \"ghost\"}\n"
      "{\"op\": \"query\"}\n";
  StreamOptions options;
  options.parallel_reads = 2;
  std::string responses;
  const RunnerStats stats = run_scheduled(base, stream, options, responses);

  EXPECT_EQ(stats.requests, 9);  // 11 lines minus blank + comment
  EXPECT_EQ(stats.errors, 8);    // everything except the final query
  EXPECT_EQ(stats.failures, 0);

  std::istringstream lines(responses);
  std::string line;
  int parsed = 0;
  bool saw_ok = false;
  while (std::getline(lines, line)) {
    const json::ParseResult doc = json::parse(line);
    ASSERT_TRUE(doc.ok) << line;
    const json::Value* ok = doc.value.find("ok");
    ASSERT_NE(ok, nullptr) << line;
    // Every response carries the v2 schema stamp, error lines a structured
    // error object (docs/api.md "Request schema v2").
    const json::Value* schema = doc.value.find("schema_version");
    ASSERT_NE(schema, nullptr) << line;
    EXPECT_EQ(schema->as_number(), 2.0) << line;
    if (ok->as_bool()) {
      saw_ok = true;
    } else {
      const json::Value* error = doc.value.find("error");
      ASSERT_NE(error, nullptr) << line;
      ASSERT_TRUE(error->is_object()) << line;
      const json::Value* code = error->find("code");
      const json::Value* message = error->find("message");
      const json::Value* retryable = error->find("retryable");
      ASSERT_NE(code, nullptr) << line;
      ASSERT_NE(message, nullptr) << line;
      ASSERT_NE(retryable, nullptr) << line;
      EXPECT_FALSE(code->as_string().empty()) << line;
      EXPECT_FALSE(message->as_string().empty()) << line;
      EXPECT_FALSE(retryable->as_bool()) << line;  // none of these retry
    }
    ASSERT_NE(doc.value.find("latency_us"), nullptr) << line;
    ++parsed;
  }
  EXPECT_EQ(parsed, 9);
  EXPECT_TRUE(saw_ok);  // the trailing query succeeded
}

/// Trace context: a client-supplied trace_id is echoed verbatim; absent
/// one, a deterministic id is minted from the line's position and bytes --
/// identically in both drivers, parse-error lines included, so trace_id
/// sits inside the byte-identity contract the differential test enforces.
TEST(ServiceScheduler, TraceIdsPropagateOrMintDeterministically) {
  const System base = make_base(5);
  const std::string stream =
      "{\"op\": \"query\", \"trace_id\": \"client-abc\"}\n"
      "{\"op\": \"query\"}\n"
      "{broken\n";

  std::string sequential;
  run_sequential(base, stream, sequential);
  StreamOptions options;
  options.parallel_reads = 2;
  std::string scheduled;
  run_scheduled(base, stream, options, scheduled);

  const auto trace_ids = [](const std::string& responses) {
    std::vector<std::string> ids;
    std::istringstream lines(responses);
    std::string line;
    while (std::getline(lines, line)) {
      const json::ParseResult doc = json::parse(line);
      EXPECT_TRUE(doc.ok) << line;
      const json::Value* id = doc.value.find("trace_id");
      EXPECT_NE(id, nullptr) << line;
      ids.push_back(id != nullptr ? id->as_string() : std::string());
    }
    return ids;
  };
  const std::vector<std::string> seq_ids = trace_ids(sequential);
  ASSERT_EQ(seq_ids.size(), 3u);
  EXPECT_EQ(seq_ids[0], "client-abc");  // propagated verbatim
  EXPECT_EQ(seq_ids[1].size(), 16u);    // minted: 16 hex chars
  EXPECT_FALSE(seq_ids[2].empty());     // even the parse error carries one
  EXPECT_NE(seq_ids[1], seq_ids[2]);
  EXPECT_EQ(seq_ids, trace_ids(scheduled));  // drivers agree id-for-id
}

/// Backpressure is batch-depth based, hence deterministic: with
/// max_inflight = 2, the third and later consecutive reads are shed with a
/// retryable "overloaded" error until a barrier drains the batch.
TEST(ServiceScheduler, BackpressureShedsDeterministically) {
  const System base = make_base(11);
  Rng rng(23);
  std::ostringstream stream;
  for (int i = 0; i < 5; ++i) {
    stream << job_request("what_if", random_candidate(rng, base, i), false)
           << "\n";
  }
  stream << "{\"op\": \"query\"}\n";  // same class: still shed

  StreamOptions options;
  options.parallel_reads = 2;
  options.max_inflight = 2;
  std::string responses;
  const RunnerStats stats =
      run_scheduled(base, stream.str(), options, responses);

  EXPECT_EQ(stats.requests, 6);
  EXPECT_EQ(stats.rejected, 4);  // requests 3..6 overflow the depth-2 batch
  int retries = 0;
  std::istringstream lines(responses);
  std::string line;
  while (std::getline(lines, line)) {
    const json::ParseResult doc = json::parse(line);
    ASSERT_TRUE(doc.ok) << line;
    const json::Value* error = doc.value.find("error");
    if (error == nullptr) continue;
    ASSERT_TRUE(error->is_object()) << line;
    if (error->find("code")->as_string() != "overloaded") continue;
    EXPECT_TRUE(error->find("retryable")->as_bool()) << line;
    ASSERT_NE(doc.value.find("ok"), nullptr);
    EXPECT_FALSE(doc.value.find("ok")->as_bool());
    ++retries;
  }
  EXPECT_EQ(retries, 4);

  // A class barrier drains the batch: mutations interleaved with reads keep
  // every batch under the bound, so nothing is shed.
  std::ostringstream paced;
  for (int i = 0; i < 4; ++i) {
    paced << job_request("what_if", random_candidate(rng, base, 10 + i), false)
          << "\n";
    paced << "{\"op\": \"remove\", \"job_id\": 424242}\n";
  }
  const RunnerStats paced_stats =
      run_scheduled(base, paced.str(), options, responses);
  EXPECT_EQ(paced_stats.rejected, 0);
}

/// Requests older than the timeout at execution start are answered with a
/// retryable "timeout" error without running.
TEST(ServiceScheduler, TimeoutExpiresStaleRequests) {
  const System base = make_base(13);
  AdmissionSession session(base, make_session_config(base));
  std::ostringstream out;
  StreamOptions options;
  options.request_timeout_ms = 1.0;
  RequestScheduler scheduler(session, out, options);

  Rng rng(29);
  scheduler.submit_line(
      job_request("what_if", random_candidate(rng, base, 0), false));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  scheduler.finish();

  EXPECT_EQ(scheduler.stats().requests, 1);
  EXPECT_EQ(scheduler.stats().timeouts, 1);
  EXPECT_EQ(scheduler.stats().errors, 1);
  const json::ParseResult doc = json::parse(out.str());
  ASSERT_TRUE(doc.ok) << out.str();
  const json::Value* error = doc.value.find("error");
  ASSERT_NE(error, nullptr) << out.str();
  ASSERT_TRUE(error->is_object()) << out.str();
  EXPECT_EQ(error->find("code")->as_string(), "timeout");
  EXPECT_TRUE(error->find("retryable")->as_bool());
  EXPECT_FALSE(doc.value.find("ok")->as_bool());
}

/// Regression (scheduler-lifecycle sweep): requests that expire before
/// execution must not consume auto-assigned job ids. Pre-fix, the read pass
/// advanced the simulated counter for every pending what_if before checking
/// staleness, so a timed-out probe still burned an id and every later
/// admit/what_if in the session shifted.
TEST(ServiceScheduler, JobIdCounterSkipsTimedOutRequests) {
  const System base = make_base(13);
  AdmissionSession session(base, make_session_config(base));
  std::ostringstream out;
  StreamOptions options;
  options.request_timeout_ms = 1.0;
  RequestScheduler scheduler(session, out, options);

  Rng rng(31);
  for (int i = 0; i < 3; ++i) {
    scheduler.submit_line(
        job_request("what_if", random_candidate(rng, base, i), false));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // The mutation forces a class barrier: the stale what_ifs expire, then the
  // admit executes. Its auto id must be the one the FIRST what_if would have
  // taken -- the expired probes consumed nothing.
  scheduler.submit_line(
      job_request("admit", random_candidate(rng, base, 100), false));
  scheduler.finish();

  EXPECT_EQ(scheduler.stats().timeouts, 3);
  std::uint64_t admit_id = 0;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    const json::ParseResult doc = json::parse(line);
    ASSERT_TRUE(doc.ok) << line;
    if (doc.value.find("op")->as_string() != "admit") continue;
    ASSERT_NE(doc.value.find("job_id"), nullptr) << line;
    admit_id = static_cast<std::uint64_t>(
        doc.value.find("job_id")->as_number());
  }
  // The base system owns ids 1..job_count(); the first free id is next.
  EXPECT_EQ(admit_id, static_cast<std::uint64_t>(base.job_count()) + 1);
}

/// Regression companion, randomized: with backpressure AND the timeout
/// machinery armed (a timeout so large it never fires), shed requests must
/// not consume job ids either -- the surviving responses carry exactly the
/// job_id sequence of a sequential run over the surviving lines.
TEST(ServiceScheduler, ShedRequestsDoNotConsumeJobIds) {
  const RngFactory factory(0x5EDD1FF);
  for (int trial = 0; trial < 2; ++trial) {
    const System base = make_base(200 + static_cast<std::uint64_t>(trial));
    Rng rng = factory.stream(static_cast<std::uint64_t>(trial));
    const std::string stream =
        build_stream(rng, base, /*n=*/50, /*read_fraction=*/0.85);
    std::vector<std::string> input_lines;
    {
      std::istringstream in(stream);
      std::string line;
      while (std::getline(in, line)) input_lines.push_back(line);
    }

    StreamOptions options;
    options.parallel_reads = 2;
    options.max_inflight = 2;             // dense read runs overflow and shed
    options.request_timeout_ms = 1.0e7;   // armed, never fires
    std::string responses;
    const RunnerStats stats = run_scheduled(base, stream, options, responses);
    ASSERT_GT(stats.rejected, 0) << "trial " << trial
                                 << ": stream never tripped backpressure";
    EXPECT_EQ(stats.timeouts, 0);
    EXPECT_EQ(stats.coalesced, 0);  // timeouts armed => coalescing off

    // Map each shed response back to its input line via the "line" echo,
    // then replay only the surviving lines sequentially.
    std::vector<bool> shed(input_lines.size() + 1, false);
    std::vector<std::uint64_t> scheduled_ids;
    std::istringstream lines(responses);
    std::string line;
    while (std::getline(lines, line)) {
      const json::ParseResult doc = json::parse(line);
      ASSERT_TRUE(doc.ok) << line;
      const json::Value* error = doc.value.find("error");
      if (error != nullptr && error->is_object() &&
          error->find("code")->as_string() == "overloaded") {
        shed[static_cast<std::size_t>(
            doc.value.find("line")->as_number())] = true;
        continue;
      }
      if (const json::Value* id = doc.value.find("job_id"); id != nullptr) {
        scheduled_ids.push_back(
            static_cast<std::uint64_t>(id->as_number()));
      }
    }
    std::ostringstream filtered;
    for (std::size_t i = 0; i < input_lines.size(); ++i) {
      if (!shed[i + 1]) filtered << input_lines[i] << "\n";
    }
    std::string expected;
    run_sequential(base, filtered.str(), expected);
    std::vector<std::uint64_t> sequential_ids;
    std::istringstream expected_lines(expected);
    while (std::getline(expected_lines, line)) {
      const json::ParseResult doc = json::parse(line);
      ASSERT_TRUE(doc.ok) << line;
      if (const json::Value* id = doc.value.find("job_id"); id != nullptr) {
        sequential_ids.push_back(
            static_cast<std::uint64_t>(id->as_number()));
      }
    }
    ASSERT_FALSE(scheduled_ids.empty());
    EXPECT_EQ(scheduled_ids, sequential_ids) << "trial " << trial;
  }
}

/// Regression (scheduler-lifecycle sweep): finish() is idempotent, and
/// submitting after finish() is a programming error with a defined failure
/// -- pre-fix the line was silently accepted and its response lost or
/// emitted after the "final" flush.
TEST(ServiceScheduler, FinishIsIdempotentAndSubmitAfterFinishThrows) {
  const System base = make_base(17);
  AdmissionSession session(base, make_session_config(base));
  std::ostringstream out;
  RequestScheduler scheduler(session, out, StreamOptions{});

  scheduler.submit_line("{\"op\": \"query\"}");
  scheduler.finish();
  const std::string first = out.str();
  EXPECT_FALSE(first.empty());

  scheduler.finish();  // idempotent: no duplicate flush, no throw
  EXPECT_EQ(out.str(), first);

  EXPECT_THROW(scheduler.submit_line("{\"op\": \"query\"}"),
               std::logic_error);
  EXPECT_THROW(scheduler.submit_line("# even comments are rejected"),
               std::logic_error);
  EXPECT_EQ(out.str(), first);  // nothing leaked past the final flush
  EXPECT_EQ(scheduler.stats().requests, 1);
}

/// The legacy envelope behind `serve --compat-v1`: no schema_version stamp,
/// string errors, and the ad-hoc retry/timeout markers -- and the two
/// drivers stay byte-identical under it too.
TEST(ServiceScheduler, CompatV1EnvelopePreservesLegacyShapes) {
  const System base = make_base(19);
  Rng rng(0xE5CA9E);
  const std::string stream =
      build_stream(rng, base, /*n=*/40, /*read_fraction=*/0.7);

  std::string expected;
  {
    AdmissionSession session(base, make_session_config(base));
    std::istringstream in(stream);
    std::ostringstream out;
    service::run_request_stream(session, in, out, service::Envelope::kV1);
    expected = out.str();
  }
  StreamOptions options;
  options.parallel_reads = 2;
  options.envelope = service::Envelope::kV1;
  std::string got;
  run_scheduled(base, stream, options, got);
  EXPECT_EQ(strip_latency(got), strip_latency(expected));

  int errors = 0;
  std::istringstream lines(expected);
  std::string line;
  while (std::getline(lines, line)) {
    const json::ParseResult doc = json::parse(line);
    ASSERT_TRUE(doc.ok) << line;
    EXPECT_EQ(doc.value.find("schema_version"), nullptr) << line;
    const json::Value* ok = doc.value.find("ok");
    ASSERT_NE(ok, nullptr) << line;
    if (const json::Value* error = doc.value.find("error");
        error != nullptr) {
      EXPECT_TRUE(error->is_string()) << line;  // v1 errors are strings
      EXPECT_FALSE(error->as_string().empty()) << line;
      ++errors;
    }
  }
  EXPECT_GT(errors, 0);  // the stream salt guarantees error lines

  // The v1 backpressure marker: {"ok":false,...,"retry":true}.
  std::ostringstream burst;
  for (int i = 0; i < 4; ++i) {
    burst << job_request("what_if", random_candidate(rng, base, 50 + i), false)
          << "\n";
  }
  options.max_inflight = 2;
  run_scheduled(base, burst.str(), options, got);
  int retries = 0;
  std::istringstream burst_lines(got);
  while (std::getline(burst_lines, line)) {
    const json::ParseResult doc = json::parse(line);
    ASSERT_TRUE(doc.ok) << line;
    if (const json::Value* retry = doc.value.find("retry"); retry != nullptr) {
      EXPECT_TRUE(retry->as_bool());
      EXPECT_TRUE(doc.value.find("error")->is_string()) << line;
      ++retries;
    }
  }
  EXPECT_EQ(retries, 2);
}

/// what_if_region flows through the read path of both drivers and stays
/// inside the byte-identity contract at every fan-out width; probing never
/// consumes job ids, so surrounding what_ifs are unaffected.
TEST(ServiceScheduler, RegionRequestsAreByteIdenticalAcrossDrivers) {
  const System base = make_base(31);
  Rng rng(0x9E6107);
  std::ostringstream s;
  s << "{\"op\": \"what_if_region\", \"target\": \"" << base.job(0).name
    << "\", \"axes\": [{\"param\": \"exec_scale\"}]}\n";
  s << job_request("what_if", random_candidate(rng, base, 0), false) << "\n";
  s << "{\"op\": \"what_if_region\", \"target\": \"" << base.job(1).name
    << "\", \"axes\": [{\"param\": \"exec_scale\", \"hi\": 4}, "
      "{\"param\": \"burst\"}], \"columns\": 3}\n";
  s << "{\"op\": \"what_if_region\", \"target\": \"ghost\", "
      "\"axes\": [{\"param\": \"burst\"}]}\n";
  s << "{\"op\": \"what_if_region\", \"axes\": []}\n";
  s << job_request("what_if", random_candidate(rng, base, 1), false) << "\n";
  s << "{\"op\": \"query\"}\n";
  const std::string stream = s.str();

  std::string expected;
  const RunnerStats ref = run_sequential(base, stream, expected);
  EXPECT_EQ(ref.requests, 7);
  EXPECT_EQ(ref.errors, 2);  // unknown target + empty axes
  const std::string expected_stripped = strip_latency(expected);

  bool saw_region = false;
  std::istringstream lines(expected);
  std::string line;
  while (std::getline(lines, line)) {
    const json::ParseResult doc = json::parse(line);
    ASSERT_TRUE(doc.ok) << line;
    const json::Value* region = doc.value.find("region");
    if (region == nullptr) continue;
    saw_region = true;
    EXPECT_NE(region->find("probes"), nullptr) << line;
    EXPECT_TRUE(region->find("boundary") != nullptr ||
                region->find("columns") != nullptr)
        << line;
  }
  EXPECT_TRUE(saw_region);

  for (const int width : {1, 2, 0}) {
    StreamOptions options;
    options.parallel_reads = width;
    std::string got;
    const RunnerStats stats = run_scheduled(base, stream, options, got);
    EXPECT_EQ(strip_latency(got), expected_stripped)
        << "parallel_reads " << width;
    EXPECT_EQ(stats.errors, ref.errors) << "parallel_reads " << width;
  }
}

/// Reads always observe the committed state as of the last preceding
/// mutation: the class barrier is the ordering guarantee.
TEST(ServiceScheduler, ReadsObserveLatestCommittedMutation) {
  const System base = make_base(17);

  // A feather-weight candidate with a huge deadline admits cleanly.
  Job light;
  light.name = "light";
  light.deadline = 1000.0;
  light.chain.push_back(Subjob{0, 0.001, 0});
  light.arrivals = ArrivalSequence::periodic(50.0, base.last_release());

  std::ostringstream stream;
  stream << "{\"op\": \"query\"}\n";
  stream << job_request("admit", light, /*with_priority=*/false) << "\n";
  stream << "{\"op\": \"query\"}\n";
  stream << "{\"op\": \"remove\", \"name\": \"light\"}\n";
  stream << "{\"op\": \"query\"}\n";

  StreamOptions options;
  options.parallel_reads = 2;
  std::string responses;
  const RunnerStats stats =
      run_scheduled(base, stream.str(), options, responses);
  EXPECT_EQ(stats.errors, 0) << responses;

  std::vector<int> job_counts;
  std::istringstream lines(responses);
  std::string line;
  while (std::getline(lines, line)) {
    const json::ParseResult doc = json::parse(line);
    ASSERT_TRUE(doc.ok) << line;
    const json::Value* op = doc.value.find("op");
    ASSERT_NE(op, nullptr) << line;
    if (op->as_string() == "admit") {
      const json::Value* committed = doc.value.find("committed");
      ASSERT_NE(committed, nullptr) << line;
      ASSERT_TRUE(committed->as_bool()) << line;
    }
    if (op->as_string() != "query") continue;
    const json::Value* jobs = doc.value.find("jobs");
    ASSERT_NE(jobs, nullptr) << line;
    job_counts.push_back(static_cast<int>(jobs->as_number()));
  }
  ASSERT_EQ(job_counts.size(), 3u);
  EXPECT_EQ(job_counts[0], base.job_count());
  EXPECT_EQ(job_counts[1], base.job_count() + 1);  // saw the admit
  EXPECT_EQ(job_counts[2], base.job_count());      // saw the remove
}

}  // namespace
}  // namespace rta
