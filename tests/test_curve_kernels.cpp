// Differential oracle for the flat SoA curve kernels.
//
// Every kernel that was rewritten onto the flat CurveArena storage
// (construction/canonicalization, eval/eval_left, Def.5 pseudo-inverse,
// pointwise combine, the Theorem-3 min-scan, min-plus (de)convolution) is
// run side by side with the legacy knot-walking implementation transplanted
// verbatim into curve/reference.hpp, over thousands of randomized curves
// drawn from adversarial families: steps, bursty time_eq clusters,
// degenerate single-knot curves, horizon-edge knots, upward-jump-dense and
// non-monotone curves. Agreement must be BIT-EXACT: the repo's determinism
// story (differential engine runs, digest-checked service streams, the
// CurveCache's bitwise hit verification) sits on top of these kernels, so
// "close enough" is a regression.
//
// All comparisons go through std::bit_cast<uint64_t> rather than operator==
// on double. If this lived under src/, each comparison would carry an
// `// rta-lint: allow(float-eq) bit-exact oracle comparison` suppression;
// comparing bit patterns is the lint-endorsed way to spell exact equality.
//
// Failures reproduce from the ctest log: every check is wrapped in a
// SCOPED_TRACE carrying the generator seed and curve family.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "curve/algebra.hpp"
#include "curve/minplus.hpp"
#include "curve/reference.hpp"
#include "curve/transforms.hpp"
#include "util/rng.hpp"

namespace rta {
namespace {

constexpr Time kH = 10.0;

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

testing::AssertionResult bit_equal(const char* a_expr, const char* b_expr,
                                   double a, double b) {
  if (bits(a) == bits(b)) return testing::AssertionSuccess();
  return testing::AssertionFailure()
         << a_expr << " and " << b_expr << " differ bitwise: "
         << testing::PrintToString(a) << " vs " << testing::PrintToString(b);
}

#define EXPECT_BITEQ(a, b) EXPECT_PRED_FORMAT2(bit_equal, a, b)

/// Flat curve vs legacy reference: identical knot storage, bit for bit.
void expect_identical(const PwlCurve& flat, const legacyref::Curve& ref) {
  ASSERT_EQ(flat.knot_count(), ref.size());
  const CurveView v = flat.view();
  for (std::size_t i = 0; i < v.n; ++i) {
    SCOPED_TRACE("knot " + std::to_string(i));
    EXPECT_BITEQ(v.t[i], ref[i].t);
    EXPECT_BITEQ(v.l[i], ref[i].left);
    EXPECT_BITEQ(v.r[i], ref[i].right);
  }
}

// ---------------------------------------------------------------------------
// Randomized curve families. Raw knot vectors satisfy the constructor's
// preconditions (sorted times, time_eq duplicates allowed) but are otherwise
// adversarial: tolerance-tight clusters, knots epsilon-off the horizon,
// exactly-collinear runs, dense upward jumps.

enum Family {
  kSteps = 0,        // monotone staircase
  kBurst,            // clusters of time_eq-adjacent jumps (merge fixups)
  kRampJump,         // monotone ramps with occasional jumps
  kDegenerate,       // single knot / merged-to-single / constant
  kHorizonEdge,      // knots within epsilon of the horizon and each other
  kJumpDense,        // a jump at every knot, non-monotone values
  kWiggle,           // continuous non-monotone, with exactly-collinear runs
  kFamilyCount,
};

const char* family_name(int f) {
  static const char* kNames[] = {"steps",       "burst",      "ramp_jump",
                                 "degenerate",  "horizon_edge", "jump_dense",
                                 "wiggle"};
  return kNames[f % kFamilyCount];
}

std::vector<Knot> make_raw(Rng& rng, int family, int max_interior = 10) {
  std::vector<Knot> ks;
  switch (family % kFamilyCount) {
    case kSteps: {
      const int n = rng.uniform_int(0, max_interior);
      std::vector<Time> jumps;
      for (int i = 0; i < n; ++i) jumps.push_back(rng.uniform(0.0, kH));
      std::sort(jumps.begin(), jumps.end());
      const double h = rng.uniform(0.2, 1.5);
      double level = 0.0;
      ks.push_back({0.0, 0.0, 0.0});
      for (Time t : jumps) {
        ks.push_back({t, level, level + h});
        level += h;
      }
      ks.push_back({kH, level, level});
      break;
    }
    case kBurst: {
      const int clusters = rng.uniform_int(1, std::max(1, max_interior / 3));
      std::vector<Time> centers;
      for (int i = 0; i < clusters; ++i) {
        centers.push_back(rng.uniform(0.5, kH - 0.5));
      }
      std::sort(centers.begin(), centers.end());
      double level = rng.uniform(0.0, 0.5);
      ks.push_back({0.0, level, level});
      for (Time c : centers) {
        if (c <= ks.back().t) continue;
        const int burst = rng.uniform_int(2, 4);
        for (int j = 0; j < burst; ++j) {
          // Adjacent knots a fraction of the time tolerance apart: they
          // chain-merge into one composite jump.
          const Time t = c + static_cast<double>(j) * 3e-10;
          const double before = level;
          level += rng.uniform(0.2, 1.0);
          ks.push_back({t, before, level});
        }
      }
      ks.push_back({kH, level, level});
      break;
    }
    case kRampJump: {
      double val = rng.uniform(0.0, 1.0);
      ks.push_back({0.0, val, val});
      Time t = 0.0;
      for (int i = 0; i < max_interior; ++i) {
        t += rng.uniform(0.4, 2.0);
        if (t >= kH) break;
        val += rng.uniform(0.0, 1.5);  // ramp up to the knot
        const double jump =
            rng.uniform_int(0, 2) == 0 ? rng.uniform(0.2, 1.0) : 0.0;
        ks.push_back({t, val, val + jump});
        val += jump;
      }
      val += rng.uniform(0.0, 1.0);
      ks.push_back({kH, val, val});
      break;
    }
    case kDegenerate: {
      const double v = rng.uniform(-1.0, 1.0);
      switch (rng.uniform_int(0, 2)) {
        case 0:  // single knot
          ks.push_back({0.0, v, v});
          break;
        case 1:  // two knots merging into one (tiny horizon)
          ks.push_back({0.0, v, v});
          ks.push_back({4e-10, v, v + rng.uniform(0.0, 1.0)});
          break;
        default:  // constant
          ks.push_back({0.0, v, v});
          ks.push_back({kH, v, v});
          break;
      }
      break;
    }
    case kHorizonEdge: {
      double level = 0.0;
      ks.push_back({0.0, 0.0, 0.0});
      const int n = rng.uniform_int(0, 3);
      for (int i = 0; i < n; ++i) {
        const Time t = rng.uniform(0.5, kH - 1.0);
        if (t <= ks.back().t) continue;
        const double before = level;
        level += rng.uniform(0.2, 1.0);
        ks.push_back({t, before, level});
      }
      // A knot epsilon-below the horizon, then the horizon knot: time_eq
      // merges them; eval probes at the seam hit the snap branches.
      const double before = level;
      level += rng.uniform(0.2, 1.0);
      ks.push_back({kH - 4e-10, before, level});
      ks.push_back({kH, level, level + rng.uniform(0.0, 0.5)});
      break;
    }
    case kJumpDense: {
      ks.push_back({0.0, rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)});
      Time t = 0.0;
      for (int i = 0; i < max_interior; ++i) {
        t += rng.uniform(0.3, 1.2);
        if (t >= kH) break;
        ks.push_back({t, rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)});
      }
      ks.push_back({kH, rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)});
      break;
    }
    default: {  // kWiggle
      double val = rng.uniform(-1.0, 1.0);
      double slope = rng.uniform(-1.0, 1.0);
      Time t = 0.0;
      ks.push_back({0.0, val, val});
      for (int i = 0; i < max_interior; ++i) {
        const Time dt = rng.uniform(0.4, 1.5);
        t += dt;
        if (t >= kH) break;
        if (rng.uniform_int(0, 2) == 0) {
          // Keep the previous slope: exactly-collinear interior knot, the
          // canonicalizer must drop it (identically on both sides).
          val += slope * dt;
        } else {
          slope = rng.uniform(-1.0, 1.0);
          val += rng.uniform(-1.0, 1.0);
        }
        ks.push_back({t, val, val});
      }
      val += rng.uniform(-1.0, 1.0);
      ks.push_back({kH, val, val});
      break;
    }
  }
  return ks;
}

bool family_monotone(int family) {
  const int f = family % kFamilyCount;
  return f == kSteps || f == kBurst || f == kRampJump;
}

/// Probe instants that stress every eval branch: the knots themselves,
/// epsilon offsets inside and outside the time tolerance, segment midpoints,
/// both sides of 0 and the horizon, and uniform draws.
std::vector<Time> probe_times(const PwlCurve& c, Rng& rng) {
  std::vector<Time> ts = {-1.0, 0.0, 1e-12, -1e-12, c.horizon(),
                          c.horizon() + 1.0};
  const CurveView v = c.view();
  for (std::size_t i = 0; i < v.n; ++i) {
    const Time t = v.t[i];
    ts.push_back(t);
    ts.push_back(t - 3e-10);  // inside the snap tolerance
    ts.push_back(t + 3e-10);
    ts.push_back(t - 1e-6);  // outside it
    ts.push_back(t + 1e-6);
    if (i + 1 < v.n) ts.push_back(0.5 * (t + v.t[i + 1]));
  }
  for (int i = 0; i < 8; ++i) ts.push_back(rng.uniform(-0.5, kH + 0.5));
  return ts;
}

// ---------------------------------------------------------------------------
// Construction + eval/eval_left differential. Also the constructor audit's
// randomized half: the canonicalization pipelines must agree bit for bit on
// every family, including the merge/slim fixup paths.

TEST(CurveKernelDifferential, ConstructionAndEval) {
  constexpr int kCases = 5250;
  for (int seed = 0; seed < kCases; ++seed) {
    Rng rng(0xC0FFEEu + static_cast<std::uint64_t>(seed));
    const int family = seed % kFamilyCount;
    SCOPED_TRACE(std::string("seed=") + std::to_string(seed) + " family=" +
                 family_name(family));
    const std::vector<Knot> raw = make_raw(rng, family);
    const PwlCurve flat{std::vector<Knot>(raw)};
    const legacyref::Curve ref = legacyref::make_curve(raw);
    expect_identical(flat, ref);
    for (Time t : probe_times(flat, rng)) {
      EXPECT_BITEQ(flat.eval(t), legacyref::eval(ref, t)) << "t=" << t;
      EXPECT_BITEQ(flat.eval_left(t), legacyref::eval_left(ref, t))
          << "t=" << t;
    }
  }
}

// ---------------------------------------------------------------------------
// Def.5 pseudo-inverse differential over monotone families, probing exact
// knot levels, jump interiors, flat segments and both out-of-range sides.

TEST(CurveKernelDifferential, PseudoInverse) {
  constexpr int kCases = 5120;
  for (int seed = 0; seed < kCases; ++seed) {
    Rng rng(0xBEEFu + static_cast<std::uint64_t>(seed));
    const int family = seed % 3;  // kSteps, kBurst, kRampJump
    SCOPED_TRACE(std::string("seed=") + std::to_string(seed) + " family=" +
                 family_name(family));
    const std::vector<Knot> raw = make_raw(rng, family);
    const PwlCurve flat{std::vector<Knot>(raw)};
    const legacyref::Curve ref = legacyref::make_curve(raw);
    ASSERT_TRUE(flat.is_nondecreasing());
    std::vector<double> levels = {-1.0, 0.0, flat.end_value(),
                                  flat.end_value() + 0.5,
                                  flat.end_value() + 1e-8};
    const CurveView v = flat.view();
    for (std::size_t i = 0; i < v.n; ++i) {
      levels.push_back(v.r[i]);
      levels.push_back(v.r[i] - 5e-8);  // inside the value tolerance
      levels.push_back(v.r[i] + 5e-8);
      levels.push_back(0.5 * (v.l[i] + v.r[i]));  // inside a jump
      if (i + 1 < v.n) levels.push_back(0.5 * (v.r[i] + v.l[i + 1]));
    }
    for (int i = 0; i < 6; ++i) {
      levels.push_back(rng.uniform(-0.5, flat.end_value() + 0.5));
    }
    for (double y : levels) {
      EXPECT_BITEQ(flat.pseudo_inverse(y), legacyref::pseudo_inverse(ref, y))
          << "y=" << y;
    }
  }
}

// ---------------------------------------------------------------------------
// Pointwise combine: add/sub/min/max each see >= 5000 operand curves.

TEST(CurveKernelDifferential, PointwiseCombine) {
  constexpr int kPairs = 2600;
  for (int seed = 0; seed < kPairs; ++seed) {
    Rng rng(0xABBAu + static_cast<std::uint64_t>(seed));
    const int fa = seed % kFamilyCount;
    const int fb = (seed / kFamilyCount + seed) % kFamilyCount;
    SCOPED_TRACE(std::string("seed=") + std::to_string(seed) + " a=" +
                 family_name(fa) + " b=" + family_name(fb));
    std::vector<Knot> raw_a = make_raw(rng, fa);
    std::vector<Knot> raw_b = make_raw(rng, fb);
    // Combine requires matching horizons; degenerate curves are exercised
    // through ConstructionAndEval instead.
    if (raw_a.back().t < kH) raw_a.push_back({kH, 0.0, 0.0});
    if (raw_b.back().t < kH) raw_b.push_back({kH, 0.0, 0.0});
    const PwlCurve a{std::vector<Knot>(raw_a)};
    const PwlCurve b{std::vector<Knot>(raw_b)};
    const legacyref::Curve ra = legacyref::make_curve(raw_a);
    const legacyref::Curve rb = legacyref::make_curve(raw_b);
    expect_identical(curve_add(a, b), legacyref::add(ra, rb));
    expect_identical(curve_sub(a, b), legacyref::sub(ra, rb));
    expect_identical(curve_min(a, b), legacyref::min(ra, rb));
    expect_identical(curve_max(a, b), legacyref::max(ra, rb));
    const double k = rng.uniform(-2.0, 2.0);
    expect_identical(curve_scale(a, k), legacyref::scale(ra, k));
    expect_identical(curve_add_constant(b, k),
                     legacyref::add_constant(rb, k));
    const Time dt = rng.uniform_int(0, 3) == 0 ? 0.0 : rng.uniform(0.1, kH);
    expect_identical(curve_shift_right(a, dt), legacyref::shift_right(ra, dt));
  }
}

// ---------------------------------------------------------------------------
// Theorem-3 min-scan: the running-max core over non-monotone curves, and the
// full service_transform composition (lagged and unlagged).

TEST(CurveKernelDifferential, MinScanRunningMax) {
  constexpr int kCases = 5200;
  for (int seed = 0; seed < kCases; ++seed) {
    Rng rng(0xDEADu + static_cast<std::uint64_t>(seed));
    const int family = (seed % 2 == 0) ? kJumpDense : kWiggle;
    SCOPED_TRACE(std::string("seed=") + std::to_string(seed) + " family=" +
                 family_name(family));
    const std::vector<Knot> raw = make_raw(rng, family);
    const PwlCurve flat{std::vector<Knot>(raw)};
    const legacyref::Curve ref = legacyref::make_curve(raw);
    expect_identical(curve_running_max(flat), legacyref::running_max(ref));
  }
}

TEST(CurveKernelDifferential, MinScanServiceTransform) {
  constexpr int kCases = 2600;
  for (int seed = 0; seed < kCases; ++seed) {
    Rng rng(0xFACEu + static_cast<std::uint64_t>(seed));
    SCOPED_TRACE(std::string("seed=") + std::to_string(seed));
    // Availability: continuous nondecreasing from 0 (a processor-share
    // curve). Workload: monotone staircase demand.
    std::vector<Knot> avail;
    {
      double val = 0.0;
      avail.push_back({0.0, 0.0, 0.0});
      Time t = 0.0;
      while (true) {
        t += rng.uniform(0.8, 2.5);
        if (t >= kH) break;
        val += rng.uniform(0.0, 2.0);
        avail.push_back({t, val, val});
      }
      val += rng.uniform(0.5, 2.0);
      avail.push_back({kH, val, val});
    }
    const std::vector<Knot> work = make_raw(rng, seed % 2 == 0 ? kSteps
                                                               : kBurst);
    const Time lag = rng.uniform_int(0, 1) == 0 ? 0.0 : rng.uniform(0.2, 4.0);
    const PwlCurve a{std::vector<Knot>(avail)};
    const PwlCurve w{std::vector<Knot>(work)};
    if (!time_eq(w.horizon(), kH)) continue;  // degenerate merge artifact
    const legacyref::Curve ra = legacyref::make_curve(avail);
    const legacyref::Curve rw = legacyref::make_curve(work);
    expect_identical(service_transform(a, w, lag),
                     legacyref::service_transform(ra, rw, lag));
  }
}

// ---------------------------------------------------------------------------
// Min-plus convolution / deconvolution: 2600 pairs = 5200 operand curves per
// kernel. Operand sizes are kept moderate (the reference kernel is the
// quadratic-grid legacy implementation).

TEST(CurveKernelDifferential, MinPlusConvolution) {
  constexpr int kPairs = 2600;
  for (int seed = 0; seed < kPairs; ++seed) {
    Rng rng(0xF00Du + static_cast<std::uint64_t>(seed));
    const int fa = seed % kFamilyCount;
    const int fb = (seed + 3) % kFamilyCount;
    SCOPED_TRACE(std::string("seed=") + std::to_string(seed) + " f=" +
                 family_name(fa) + " g=" + family_name(fb));
    std::vector<Knot> raw_f = make_raw(rng, fa, /*max_interior=*/6);
    std::vector<Knot> raw_g = make_raw(rng, fb, /*max_interior=*/6);
    if (raw_f.back().t < kH) raw_f.push_back({kH, 0.0, 0.0});
    if (raw_g.back().t < kH) raw_g.push_back({kH, 0.0, 0.0});
    const PwlCurve f{std::vector<Knot>(raw_f)};
    const PwlCurve g{std::vector<Knot>(raw_g)};
    const legacyref::Curve rf = legacyref::make_curve(raw_f);
    const legacyref::Curve rg = legacyref::make_curve(raw_g);
    expect_identical(min_plus_convolution(f, g),
                     legacyref::convolution(rf, rg));
    expect_identical(min_plus_deconvolution(f, g),
                     legacyref::deconvolution(rf, rg));
  }
}

// ---------------------------------------------------------------------------
// Constructor knot-merge audit (satellite: time_eq fixups vs a brute-force
// oracle). The oracle below restates the *documented* semantics directly:
// sorted knots chain-group by time tolerance against the group's first
// abscissa; each group keeps the first left limit and the last right value;
// the result is anchored at 0 and the first left limit pinned.
//
// Inputs are jump-dense on a value lattice (lefts on even multiples of 0.01,
// rights on odd multiples), so |left - right| >= 0.01 everywhere and the
// collinear-slim pass provably never fires -- the constructor must match the
// oracle bit for bit.

std::vector<Knot> brute_merge_oracle(std::vector<Knot> raw) {
  if (!time_eq(raw.front().t, 0.0)) {
    raw.insert(raw.begin(), {0.0, raw.front().left, raw.front().left});
  } else {
    raw.front().t = 0.0;
  }
  std::vector<Knot> out;
  for (const Knot& k : raw) {
    if (!out.empty() && time_eq(out.back().t, k.t)) {
      out.back().right = k.right;  // last right of the group wins
    } else {
      out.push_back(k);  // group anchor: first time, first left
    }
  }
  out.front().left = out.front().right;
  return out;
}

TEST(CurveConstructorAudit, MergeFixupsMatchBruteForceOracle) {
  constexpr int kCases = 5000;
  for (int seed = 0; seed < kCases; ++seed) {
    Rng rng(0x5EEDu + static_cast<std::uint64_t>(seed));
    SCOPED_TRACE(std::string("seed=") + std::to_string(seed));
    std::vector<Knot> raw;
    auto lattice_left = [&] {
      return 0.02 * static_cast<double>(rng.uniform_int(-100, 100));
    };
    auto lattice_right = [&] {
      return 0.02 * static_cast<double>(rng.uniform_int(-100, 100)) + 0.01;
    };
    Time t = rng.uniform_int(0, 3) == 0 ? rng.uniform(0.1, 1.0) : 0.0;
    const int n = rng.uniform_int(1, 12);
    for (int i = 0; i < n; ++i) {
      raw.push_back({t, lattice_left(), lattice_right()});
      if (rng.uniform_int(0, 2) == 0) {
        t += rng.uniform(0.0, 1.0) * 8e-10;  // stay inside the tolerance
      } else {
        t += rng.uniform(0.1, 2.0);
      }
    }
    const PwlCurve flat{std::vector<Knot>(raw)};
    const std::vector<Knot> oracle = brute_merge_oracle(raw);
    ASSERT_EQ(flat.knot_count(), oracle.size());
    const CurveView v = flat.view();
    for (std::size_t i = 0; i < v.n; ++i) {
      SCOPED_TRACE("knot " + std::to_string(i));
      EXPECT_BITEQ(v.t[i], oracle[i].t);
      EXPECT_BITEQ(v.l[i], oracle[i].left);
      EXPECT_BITEQ(v.r[i], oracle[i].right);
    }
    ASSERT_TRUE(flat.check_invariants());
  }
}

// Audited quirk #1 (intentional, kept): grouping is CHAINED. A run of knots
// each within tolerance of the group's first abscissa merges into one knot
// even when later additions are no longer time_eq to each other -- the
// comparison is always against the group anchor, never the previous member.
// The brute-force oracle above encodes the same rule, and the randomized
// audit would catch any divergence; this test pins the behavior explicitly.
TEST(CurveConstructorAudit, ChainedMergeUsesGroupAnchor) {
  const std::vector<Knot> raw = {{0.0, 0.0, 0.0},
                                 {5.0, 1.0, 2.0},
                                 {5.0 + 8e-10, 2.0, 3.0},
                                 {kH, 3.0, 3.0}};
  const PwlCurve c{std::vector<Knot>(raw)};
  ASSERT_EQ(c.knot_count(), 3u);
  EXPECT_BITEQ(c.knot_time(1), 5.0);   // group anchor time
  EXPECT_BITEQ(c.knot_left(1), 1.0);   // first left
  EXPECT_BITEQ(c.knot_right(1), 3.0);  // last right
}

// Audited quirk #2 (intentional, kept -- the "reasoned suppression" of the
// audit): the collinear-slim pass is GREEDY. Each drop re-anchors the chord
// at the last *kept* knot, so a long run of nearly-collinear knots can drift
// by up to kValueEps per dropped knot relative to the original polyline.
// Fixing this would change every canonical curve in the repo (and every
// digest built on them) for a value drift that stays tolerance-bounded per
// step; the differential suite instead proves both implementations drift
// IDENTICALLY (ConstructionAndEval covers the kWiggle family). This test
// documents the bound on a worst-case chain.
TEST(CurveConstructorAudit, GreedySlimDriftIsToleranceBoundedPerStep) {
  // A shallow parabola sampled densely: every knot is within kValueEps of
  // the chord the greedy pass is currently testing against, yet the chain as
  // a whole bends by many multiples of kValueEps. The greedy pass keeps
  // dropping (re-anchoring occasionally), so the canonical curve deviates
  // from the original polyline by more than one tolerance -- but never by
  // more than kValueEps per dropped knot.
  std::vector<Knot> raw;
  const int kChain = 30;
  const double c2 = kValueEps / 20.0;  // curvature: per-step chord error < eps
  for (int i = 0; i <= kChain; ++i) {
    const double val = c2 * static_cast<double>(i) * static_cast<double>(i);
    raw.push_back({static_cast<Time>(i) * 0.1, val, val});
  }
  raw.push_back({kH, raw.back().right, raw.back().right});
  const PwlCurve c{std::vector<Knot>(raw)};
  const legacyref::Curve ref = legacyref::make_curve(raw);
  expect_identical(c, ref);  // both sides slim the same knots
  // The canonical curve dropped most of the chain; its value error at any
  // original knot is bounded by the accumulated per-drop tolerance.
  EXPECT_LT(c.knot_count(), raw.size());
  for (const Knot& k : raw) {
    EXPECT_NEAR(c.eval(k.t), k.right,
                kValueEps * static_cast<double>(kChain));
  }
}

// ---------------------------------------------------------------------------
// The step factory is a kernel too (counting curves feed curve_floor_div and
// crossing counts): differential against the legacy factory.

TEST(CurveKernelDifferential, StepFactory) {
  constexpr int kCases = 5000;
  for (int seed = 0; seed < kCases; ++seed) {
    Rng rng(0x57E9u + static_cast<std::uint64_t>(seed));
    SCOPED_TRACE(std::string("seed=") + std::to_string(seed));
    std::vector<Time> jumps;
    const int n = rng.uniform_int(0, 12);
    for (int i = 0; i < n; ++i) jumps.push_back(rng.uniform(-0.1, kH + 0.5));
    std::sort(jumps.begin(), jumps.end());
    const double h = rng.uniform(0.1, 2.0);
    expect_identical(PwlCurve::step(kH, jumps, h),
                     legacyref::step(kH, jumps, h));
  }
}

}  // namespace
}  // namespace rta
