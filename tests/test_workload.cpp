// Tests for the job-shop workload generator (§5.1, Eqs. 25-28).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "model/priority.hpp"
#include "workload/jobshop.hpp"

namespace rta {
namespace {

JobShopConfig base_config() {
  JobShopConfig cfg;
  cfg.stages = 4;
  cfg.processors_per_stage = 2;
  cfg.jobs = 6;
  cfg.utilization = 0.5;
  cfg.window_periods = 6.0;
  cfg.min_rate = 0.1;
  return cfg;
}

TEST(JobShop, StructureMatchesConfig) {
  Rng rng(1);
  const System sys = generate_jobshop(base_config(), rng);
  EXPECT_EQ(sys.processor_count(), 8);
  EXPECT_EQ(sys.job_count(), 6);
  for (int k = 0; k < sys.job_count(); ++k) {
    const Job& j = sys.job(k);
    ASSERT_EQ(j.chain.size(), 4u);
    for (std::size_t s = 0; s < 4; ++s) {
      // Stage s uses processors [2s, 2s+1].
      EXPECT_GE(j.chain[s].processor, static_cast<int>(2 * s));
      EXPECT_LE(j.chain[s].processor, static_cast<int>(2 * s + 1));
      EXPECT_GT(j.chain[s].exec_time, 0.0);
    }
  }
}

TEST(JobShop, ValidAfterPriorityAssignment) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    System sys = generate_jobshop(base_config(), rng);
    assign_proportional_deadline_monotonic(sys);
    EXPECT_TRUE(sys.validate().empty()) << "seed " << seed;
    EXPECT_TRUE(sys.dependency_graph_is_acyclic()) << "seed " << seed;
  }
}

TEST(JobShop, PeriodicArrivalsFollowEq25) {
  Rng rng(2);
  JobShopConfig cfg = base_config();
  cfg.pattern = ArrivalPattern::kPeriodic;
  const System sys = generate_jobshop(cfg, rng);
  for (int k = 0; k < sys.job_count(); ++k) {
    const auto& rel = sys.job(k).arrivals.releases();
    ASSERT_GE(rel.size(), 2u);
    EXPECT_DOUBLE_EQ(rel[0], 0.0);
    const double period = rel[1] - rel[0];
    for (std::size_t i = 2; i < rel.size(); ++i) {
      EXPECT_NEAR(rel[i] - rel[i - 1], period, 1e-9);
    }
    // Deadline = multiple * period.
    EXPECT_NEAR(sys.job(k).deadline, cfg.deadline.period_multiple * period,
                1e-9);
  }
}

TEST(JobShop, AperiodicArrivalsFollowEq27) {
  Rng rng(3);
  JobShopConfig cfg = base_config();
  cfg.pattern = ArrivalPattern::kAperiodic;
  const System sys = generate_jobshop(cfg, rng);
  for (int k = 0; k < sys.job_count(); ++k) {
    const auto& rel = sys.job(k).arrivals.releases();
    ASSERT_GE(rel.size(), 3u);
    EXPECT_NEAR(rel[0], 0.0, 1e-12);
    // Gaps grow towards the asymptotic period.
    EXPECT_LT(rel[1] - rel[0], rel.back() - rel[rel.size() - 2] + 1e-9);
    EXPECT_GT(sys.job(k).deadline, 0.0);
  }
}

TEST(JobShop, ExecutionTimesFollowEq26Normalization) {
  // Per Eq. 26, the per-processor sum of tau_{l,i} * x_l equals
  // Utilization * sum(w) / sum(w/x) * sum(w/x)... more directly: the sum of
  // w_{l,i}/x_l-weighted taus over a processor is Utilization * that
  // processor's denominator share. Verify the per-processor identity
  // sum_l tau_l = U * sum_l w_l (1/x_l) / denom * denom / ... by checking
  // the generator-level invariant: sum over subjobs on p of tau equals U
  // times (sum of w/x on p) / (sum of w/x on p) ... = U * 1 in weighted
  // form. We check the direct consequence: scaling U scales every tau
  // linearly.
  JobShopConfig cfg = base_config();
  cfg.utilization = 0.4;
  Rng rng_a(7);
  const System a = generate_jobshop(cfg, rng_a);
  cfg.utilization = 0.8;
  Rng rng_b(7);
  const System b = generate_jobshop(cfg, rng_b);
  for (int k = 0; k < a.job_count(); ++k) {
    for (std::size_t h = 0; h < a.job(k).chain.size(); ++h) {
      EXPECT_NEAR(b.job(k).chain[h].exec_time,
                  2.0 * a.job(k).chain[h].exec_time, 1e-9);
    }
    // Same structure across the sweep (same draws).
    EXPECT_EQ(a.job(k).chain[0].processor, b.job(k).chain[0].processor);
  }
}

TEST(JobShop, PerProcessorWeightedUtilizationIdentity) {
  // Eq. 26 identity: for each processor p,
  //   sum_{P(l,i)=p} tau_{l,i} = Utilization * sum_{P(l,i)=p} w (1/x) /
  //                              denom(p) = Utilization
  // since denom(p) = sum w (1/x) over p. I.e. the taus on each processor sum
  // to exactly the utilization knob.
  Rng rng(11);
  JobShopConfig cfg = base_config();
  cfg.utilization = 0.6;
  const System sys = generate_jobshop(cfg, rng);
  for (int p = 0; p < sys.processor_count(); ++p) {
    double total = 0.0;
    for (const SubjobRef& ref : sys.subjobs_on(p)) {
      total += sys.subjob(ref).exec_time;
    }
    if (sys.subjobs_on(p).empty()) continue;
    EXPECT_NEAR(total, 0.6, 1e-9) << "processor " << p;
  }
}

TEST(JobShop, WindowCoversConfiguredPeriods) {
  Rng rng(5);
  JobShopConfig cfg = base_config();
  cfg.window_periods = 6.0;
  const System sys = generate_jobshop(cfg, rng);
  // Every job has at least window_periods instances of its own period...
  // at minimum the slowest job has ~window_periods instances.
  std::size_t min_count = 1000;
  for (int k = 0; k < sys.job_count(); ++k) {
    min_count = std::min(min_count, sys.job(k).arrivals.count());
  }
  EXPECT_GE(min_count, 6u);
}

TEST(JobShop, DeterministicGivenSeed) {
  Rng a(99), b(99);
  const System x = generate_jobshop(base_config(), a);
  const System y = generate_jobshop(base_config(), b);
  ASSERT_EQ(x.job_count(), y.job_count());
  for (int k = 0; k < x.job_count(); ++k) {
    EXPECT_EQ(x.job(k).arrivals.count(), y.job(k).arrivals.count());
    EXPECT_DOUBLE_EQ(x.job(k).deadline, y.job(k).deadline);
    for (std::size_t h = 0; h < x.job(k).chain.size(); ++h) {
      EXPECT_DOUBLE_EQ(x.job(k).chain[h].exec_time,
                       y.job(k).chain[h].exec_time);
    }
  }
}

TEST(JobShop, SchedulerKindApplied) {
  Rng rng(1);
  JobShopConfig cfg = base_config();
  cfg.scheduler = SchedulerKind::kFcfs;
  const System sys = generate_jobshop(cfg, rng);
  for (int p = 0; p < sys.processor_count(); ++p) {
    EXPECT_EQ(sys.scheduler(p), SchedulerKind::kFcfs);
  }
}

}  // namespace
}  // namespace rta
