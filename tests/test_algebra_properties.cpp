// Randomized algebraic identities over the curve substrate: the operators
// must satisfy the (pointwise) semiring/lattice laws the analyzers silently
// rely on when composing them.
#include <gtest/gtest.h>

#include "curve/algebra.hpp"
#include "curve/transforms.hpp"
#include "util/rng.hpp"

namespace rta {
namespace {

constexpr Time kHorizon = 12.0;

PwlCurve random_curve(Rng& rng) {
  // Mix of steps and ramps: start from a step curve, add a random line.
  std::vector<Time> jumps;
  const int n = rng.uniform_int(0, 8);
  for (int i = 0; i < n; ++i) jumps.push_back(rng.uniform(0.0, kHorizon));
  std::sort(jumps.begin(), jumps.end());
  const PwlCurve steps =
      PwlCurve::step(kHorizon, jumps, rng.uniform(0.25, 2.0));
  return curve_add(steps, PwlCurve::line(kHorizon, rng.uniform(0.0, 1.5)));
}

class AlgebraProperties : public testing::TestWithParam<int> {};

TEST_P(AlgebraProperties, AddIsCommutativeAndAssociative) {
  Rng rng(GetParam());
  const PwlCurve a = random_curve(rng);
  const PwlCurve b = random_curve(rng);
  const PwlCurve c = random_curve(rng);
  EXPECT_TRUE(curve_add(a, b).approx_equal(curve_add(b, a)));
  EXPECT_TRUE(curve_add(curve_add(a, b), c)
                  .approx_equal(curve_add(a, curve_add(b, c))));
}

TEST_P(AlgebraProperties, MinMaxAreCommutativeAssociativeAbsorbing) {
  Rng rng(GetParam() + 1000);
  const PwlCurve a = random_curve(rng);
  const PwlCurve b = random_curve(rng);
  const PwlCurve c = random_curve(rng);
  EXPECT_TRUE(curve_min(a, b).approx_equal(curve_min(b, a)));
  EXPECT_TRUE(curve_max(a, b).approx_equal(curve_max(b, a)));
  EXPECT_TRUE(curve_min(curve_min(a, b), c)
                  .approx_equal(curve_min(a, curve_min(b, c))));
  // Absorption: min(a, max(a, b)) == a.
  EXPECT_TRUE(curve_min(a, curve_max(a, b)).approx_equal(a));
  EXPECT_TRUE(curve_max(a, curve_min(a, b)).approx_equal(a));
}

TEST_P(AlgebraProperties, AdditionDistributesOverMinMax) {
  // a + min(b, c) == min(a+b, a+c) (pointwise arithmetic).
  Rng rng(GetParam() + 2000);
  const PwlCurve a = random_curve(rng);
  const PwlCurve b = random_curve(rng);
  const PwlCurve c = random_curve(rng);
  EXPECT_TRUE(curve_add(a, curve_min(b, c))
                  .approx_equal(curve_min(curve_add(a, b), curve_add(a, c))));
  EXPECT_TRUE(curve_add(a, curve_max(b, c))
                  .approx_equal(curve_max(curve_add(a, b), curve_add(a, c))));
}

TEST_P(AlgebraProperties, SubThenAddRoundTrips) {
  Rng rng(GetParam() + 3000);
  const PwlCurve a = random_curve(rng);
  const PwlCurve b = random_curve(rng);
  EXPECT_TRUE(curve_add(curve_sub(a, b), b).approx_equal(a));
}

TEST_P(AlgebraProperties, ScaleIsLinear) {
  Rng rng(GetParam() + 4000);
  const PwlCurve a = random_curve(rng);
  const PwlCurve b = random_curve(rng);
  const double k = rng.uniform(0.5, 3.0);
  EXPECT_TRUE(curve_scale(curve_add(a, b), k)
                  .approx_equal(curve_add(curve_scale(a, k),
                                          curve_scale(b, k))));
}

TEST_P(AlgebraProperties, ShiftComposes) {
  Rng rng(GetParam() + 5000);
  const PwlCurve a = random_curve(rng);
  const Time d1 = rng.uniform(0.0, 3.0);
  const Time d2 = rng.uniform(0.0, 3.0);
  const PwlCurve lhs = curve_shift_right(curve_shift_right(a, d1), d2);
  const PwlCurve rhs = curve_shift_right(a, d1 + d2);
  EXPECT_LE(lhs.max_abs_difference(rhs), 1e-7);
}

TEST_P(AlgebraProperties, RunningMaxIsIdempotentAndMonotone) {
  Rng rng(GetParam() + 6000);
  const PwlCurve f =
      curve_sub(random_curve(rng), random_curve(rng));  // non-monotone
  const PwlCurve m = curve_running_max(f);
  EXPECT_TRUE(m.is_nondecreasing());
  EXPECT_TRUE(curve_running_max(m).approx_equal(m));
  // Dominates f and is dominated by any monotone dominator: spot-check via
  // max(f, m) == m.
  EXPECT_TRUE(curve_max(f, m).approx_equal(m));
}

TEST_P(AlgebraProperties, PseudoInverseGaloisConnection) {
  // For nondecreasing g: g(t) >= y  <=>  t >= g^{-1}(y) (within tolerance).
  Rng rng(GetParam() + 7000);
  const PwlCurve g = random_curve(rng);
  for (int i = 0; i < 20; ++i) {
    const double y = rng.uniform(0.0, g.end_value() + 0.5);
    const Time inv = g.pseudo_inverse(y);
    if (std::isinf(inv)) {
      EXPECT_LT(g.end_value(), y + 1e-6);
      continue;
    }
    EXPECT_GE(g.eval(inv), y - 1e-6);
    if (inv > 1e-9) {
      EXPECT_LT(g.eval_left(inv * (1.0 - 1e-9)), y + 1e-6);
    }
  }
}

TEST_P(AlgebraProperties, ServiceTransformMonotoneInBothArguments) {
  // More availability or more demand never yields less service.
  Rng rng(GetParam() + 8000);
  std::vector<Time> j1, j2;
  for (int i = 0; i < 5; ++i) {
    j1.push_back(rng.uniform(0.0, kHorizon));
    j2.push_back(rng.uniform(0.0, kHorizon));
  }
  std::sort(j1.begin(), j1.end());
  std::sort(j2.begin(), j2.end());
  const PwlCurve c_small = curve_scale(PwlCurve::step(kHorizon, j1), 0.4);
  const PwlCurve c_big = curve_add(
      c_small, curve_scale(PwlCurve::step(kHorizon, j2), 0.3));
  const PwlCurve a_small = PwlCurve::line(kHorizon, 0.6);
  const PwlCurve a_big = PwlCurve::identity(kHorizon);

  const PwlCurve s_base = service_transform(a_small, c_small);
  const PwlCurve s_more_avail = service_transform(a_big, c_small);
  const PwlCurve s_more_demand = service_transform(a_small, c_big);
  for (double t = 0.0; t <= kHorizon; t += 0.37) {
    EXPECT_GE(s_more_avail.eval(t) + 1e-9, s_base.eval(t)) << t;
    EXPECT_GE(s_more_demand.eval(t) + 1e-9, s_base.eval(t)) << t;
  }
}

// --- Canonical-form properties of the flat SoA storage ---------------------
//
// The CurveArena::finalize() pipeline is the single canonicalizer behind
// both the knot constructor and every kernel. These properties back the
// O(1) hash/compare contract the CurveCache key path relies on. Comparisons
// are on the shared CurveData storage (CurveData::identical = bitwise), not
// approx_equal: canonical forms must be exact.

TEST_P(AlgebraProperties, CanonicalizeIsIdempotentBitwise) {
  // Rebuilding a canonical curve from its own knot vector must reproduce the
  // storage bit for bit (random_curve's interior knots all carry jumps, so
  // the collinear-slim pass provably has nothing more to take).
  Rng rng(GetParam() + 9000);
  const PwlCurve c = random_curve(rng);
  const PwlCurve rebuilt{c.knots()};
  EXPECT_TRUE(CurveData::identical(*c.data(), *rebuilt.data()));
  EXPECT_EQ(c.structural_hash(), rebuilt.structural_hash());
}

TEST_P(AlgebraProperties, CanonicalizePreservesEvalAtKnotsAndMidpoints) {
  Rng rng(GetParam() + 10000);
  const PwlCurve c = random_curve(rng);
  const PwlCurve rebuilt{c.knots()};
  const CurveView v = c.view();
  for (std::size_t i = 0; i < v.n; ++i) {
    EXPECT_EQ(c.eval(v.t[i]), rebuilt.eval(v.t[i]));
    EXPECT_EQ(c.eval_left(v.t[i]), rebuilt.eval_left(v.t[i]));
    if (i + 1 < v.n) {
      const Time mid = 0.5 * (v.t[i] + v.t[i + 1]);
      EXPECT_EQ(c.eval(mid), rebuilt.eval(mid));
    }
  }
}

TEST_P(AlgebraProperties, TruncateIsIdempotentAndPreservesPrefix) {
  Rng rng(GetParam() + 11000);
  const PwlCurve c = random_curve(rng);
  const Time h = rng.uniform(0.5, kHorizon - 0.5);
  const PwlCurve p = c.truncate(h);
  EXPECT_TRUE(time_eq(p.horizon(), h));
  // Idempotent: truncating to the same horizon shares the same storage.
  EXPECT_EQ(p.truncate(h).data(), p.data());
  // Truncating to (at least) the full horizon is the identity, O(1).
  EXPECT_EQ(c.truncate(kHorizon).data(), c.data());
  EXPECT_EQ(c.truncate(kHorizon + 1.0).data(), c.data());
  // Knots strictly below h are copied verbatim: exact reads both sides.
  const CurveView pv = p.view();
  for (std::size_t i = 0; i + 1 < pv.n; ++i) {
    EXPECT_EQ(p.knot_right(i), c.eval(pv.t[i]));
    EXPECT_EQ(p.knot_left(i), c.eval_left(pv.t[i]));
  }
  // The appended end knot carries the original curve's value at h.
  EXPECT_EQ(p.end_value(), c.eval(h));
  EXPECT_EQ(p.eval_left(h), c.eval_left(h));
}

TEST_P(AlgebraProperties, EqualPrefixCurvesTruncateToEqualHashes) {
  // Two curves that agree on [0, h] but diverge beyond it: their full forms
  // compare unequal, their truncations to h are storage-identical -- the
  // O(1) CurveCache key path for prefix-equal curves.
  Rng rng(GetParam() + 12000);
  const PwlCurve base = random_curve(rng);
  std::vector<Knot> k1 = base.knots();
  // Pin a jump at the shared boundary so the canonicalizer cannot slim
  // across it, then diverge.
  k1.back().right = k1.back().left + 1.0;
  std::vector<Knot> k2 = k1;
  k1.push_back({2.0 * kHorizon, k1.back().right + 1.0, k1.back().right + 1.0});
  k2.push_back({1.5 * kHorizon, k2.back().right, k2.back().right + 2.0});
  k2.push_back({2.0 * kHorizon, k2.back().right + 3.0, k2.back().right + 3.0});
  const PwlCurve c1{std::move(k1)};
  const PwlCurve c2{std::move(k2)};
  EXPECT_FALSE(CurveData::identical(*c1.data(), *c2.data()));
  const PwlCurve p1 = c1.truncate(kHorizon);
  const PwlCurve p2 = c2.truncate(kHorizon);
  EXPECT_TRUE(CurveData::identical(*p1.data(), *p2.data()));
  EXPECT_EQ(p1.structural_hash(), p2.structural_hash());
}

TEST_P(AlgebraProperties, IdenticalStorageImpliesEqualHash) {
  Rng rng(GetParam() + 13000);
  const PwlCurve a = random_curve(rng);
  const PwlCurve b = random_curve(rng);
  if (CurveData::identical(*a.data(), *b.data())) {
    EXPECT_EQ(a.structural_hash(), b.structural_hash());
  }
  // A handle copy trivially shares storage and hash.
  const PwlCurve copy = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(copy.data(), a.data());
  EXPECT_EQ(copy.structural_hash(), a.structural_hash());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraProperties, testing::Range(1, 13));

}  // namespace
}  // namespace rta
