// Randomized algebraic identities over the curve substrate: the operators
// must satisfy the (pointwise) semiring/lattice laws the analyzers silently
// rely on when composing them.
#include <gtest/gtest.h>

#include "curve/algebra.hpp"
#include "curve/transforms.hpp"
#include "util/rng.hpp"

namespace rta {
namespace {

constexpr Time kHorizon = 12.0;

PwlCurve random_curve(Rng& rng) {
  // Mix of steps and ramps: start from a step curve, add a random line.
  std::vector<Time> jumps;
  const int n = rng.uniform_int(0, 8);
  for (int i = 0; i < n; ++i) jumps.push_back(rng.uniform(0.0, kHorizon));
  std::sort(jumps.begin(), jumps.end());
  const PwlCurve steps =
      PwlCurve::step(kHorizon, jumps, rng.uniform(0.25, 2.0));
  return curve_add(steps, PwlCurve::line(kHorizon, rng.uniform(0.0, 1.5)));
}

class AlgebraProperties : public testing::TestWithParam<int> {};

TEST_P(AlgebraProperties, AddIsCommutativeAndAssociative) {
  Rng rng(GetParam());
  const PwlCurve a = random_curve(rng);
  const PwlCurve b = random_curve(rng);
  const PwlCurve c = random_curve(rng);
  EXPECT_TRUE(curve_add(a, b).approx_equal(curve_add(b, a)));
  EXPECT_TRUE(curve_add(curve_add(a, b), c)
                  .approx_equal(curve_add(a, curve_add(b, c))));
}

TEST_P(AlgebraProperties, MinMaxAreCommutativeAssociativeAbsorbing) {
  Rng rng(GetParam() + 1000);
  const PwlCurve a = random_curve(rng);
  const PwlCurve b = random_curve(rng);
  const PwlCurve c = random_curve(rng);
  EXPECT_TRUE(curve_min(a, b).approx_equal(curve_min(b, a)));
  EXPECT_TRUE(curve_max(a, b).approx_equal(curve_max(b, a)));
  EXPECT_TRUE(curve_min(curve_min(a, b), c)
                  .approx_equal(curve_min(a, curve_min(b, c))));
  // Absorption: min(a, max(a, b)) == a.
  EXPECT_TRUE(curve_min(a, curve_max(a, b)).approx_equal(a));
  EXPECT_TRUE(curve_max(a, curve_min(a, b)).approx_equal(a));
}

TEST_P(AlgebraProperties, AdditionDistributesOverMinMax) {
  // a + min(b, c) == min(a+b, a+c) (pointwise arithmetic).
  Rng rng(GetParam() + 2000);
  const PwlCurve a = random_curve(rng);
  const PwlCurve b = random_curve(rng);
  const PwlCurve c = random_curve(rng);
  EXPECT_TRUE(curve_add(a, curve_min(b, c))
                  .approx_equal(curve_min(curve_add(a, b), curve_add(a, c))));
  EXPECT_TRUE(curve_add(a, curve_max(b, c))
                  .approx_equal(curve_max(curve_add(a, b), curve_add(a, c))));
}

TEST_P(AlgebraProperties, SubThenAddRoundTrips) {
  Rng rng(GetParam() + 3000);
  const PwlCurve a = random_curve(rng);
  const PwlCurve b = random_curve(rng);
  EXPECT_TRUE(curve_add(curve_sub(a, b), b).approx_equal(a));
}

TEST_P(AlgebraProperties, ScaleIsLinear) {
  Rng rng(GetParam() + 4000);
  const PwlCurve a = random_curve(rng);
  const PwlCurve b = random_curve(rng);
  const double k = rng.uniform(0.5, 3.0);
  EXPECT_TRUE(curve_scale(curve_add(a, b), k)
                  .approx_equal(curve_add(curve_scale(a, k),
                                          curve_scale(b, k))));
}

TEST_P(AlgebraProperties, ShiftComposes) {
  Rng rng(GetParam() + 5000);
  const PwlCurve a = random_curve(rng);
  const Time d1 = rng.uniform(0.0, 3.0);
  const Time d2 = rng.uniform(0.0, 3.0);
  const PwlCurve lhs = curve_shift_right(curve_shift_right(a, d1), d2);
  const PwlCurve rhs = curve_shift_right(a, d1 + d2);
  EXPECT_LE(lhs.max_abs_difference(rhs), 1e-7);
}

TEST_P(AlgebraProperties, RunningMaxIsIdempotentAndMonotone) {
  Rng rng(GetParam() + 6000);
  const PwlCurve f =
      curve_sub(random_curve(rng), random_curve(rng));  // non-monotone
  const PwlCurve m = curve_running_max(f);
  EXPECT_TRUE(m.is_nondecreasing());
  EXPECT_TRUE(curve_running_max(m).approx_equal(m));
  // Dominates f and is dominated by any monotone dominator: spot-check via
  // max(f, m) == m.
  EXPECT_TRUE(curve_max(f, m).approx_equal(m));
}

TEST_P(AlgebraProperties, PseudoInverseGaloisConnection) {
  // For nondecreasing g: g(t) >= y  <=>  t >= g^{-1}(y) (within tolerance).
  Rng rng(GetParam() + 7000);
  const PwlCurve g = random_curve(rng);
  for (int i = 0; i < 20; ++i) {
    const double y = rng.uniform(0.0, g.end_value() + 0.5);
    const Time inv = g.pseudo_inverse(y);
    if (std::isinf(inv)) {
      EXPECT_LT(g.end_value(), y + 1e-6);
      continue;
    }
    EXPECT_GE(g.eval(inv), y - 1e-6);
    if (inv > 1e-9) {
      EXPECT_LT(g.eval_left(inv * (1.0 - 1e-9)), y + 1e-6);
    }
  }
}

TEST_P(AlgebraProperties, ServiceTransformMonotoneInBothArguments) {
  // More availability or more demand never yields less service.
  Rng rng(GetParam() + 8000);
  std::vector<Time> j1, j2;
  for (int i = 0; i < 5; ++i) {
    j1.push_back(rng.uniform(0.0, kHorizon));
    j2.push_back(rng.uniform(0.0, kHorizon));
  }
  std::sort(j1.begin(), j1.end());
  std::sort(j2.begin(), j2.end());
  const PwlCurve c_small = curve_scale(PwlCurve::step(kHorizon, j1), 0.4);
  const PwlCurve c_big = curve_add(
      c_small, curve_scale(PwlCurve::step(kHorizon, j2), 0.3));
  const PwlCurve a_small = PwlCurve::line(kHorizon, 0.6);
  const PwlCurve a_big = PwlCurve::identity(kHorizon);

  const PwlCurve s_base = service_transform(a_small, c_small);
  const PwlCurve s_more_avail = service_transform(a_big, c_small);
  const PwlCurve s_more_demand = service_transform(a_small, c_big);
  for (double t = 0.0; t <= kHorizon; t += 0.37) {
    EXPECT_GE(s_more_avail.eval(t) + 1e-9, s_base.eval(t)) << t;
    EXPECT_GE(s_more_demand.eval(t) + 1e-9, s_base.eval(t)) << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraProperties, testing::Range(1, 13));

}  // namespace
}  // namespace rta
