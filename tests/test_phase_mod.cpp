// Tests for Phase Modification: the analyzer's zero-jitter per-hop bounds,
// the phased simulator semantics, and the intro's qualitative claims (PM
// tightens worst-case bounds vs holistic DS; PM worsens average response).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/holistic.hpp"
#include "analysis/phase_mod.hpp"
#include "model/priority.hpp"
#include "sim/invariants.hpp"
#include "sim/simulator.hpp"
#include "workload/jobshop.hpp"

namespace rta {
namespace {

Job periodic_job(const std::string& name, double period, double deadline,
                 std::vector<Subjob> chain, double window = 60.0) {
  Job j;
  j.name = name;
  j.deadline = deadline;
  j.chain = std::move(chain);
  j.arrivals = ArrivalSequence::periodic(period, window);
  return j;
}

System periodic_shop(std::uint64_t seed, std::size_t stages) {
  JobShopConfig cfg;
  cfg.stages = stages;
  cfg.processors_per_stage = 2;
  cfg.jobs = 5;
  cfg.utilization = 0.5;
  cfg.window_periods = 6.0;
  cfg.min_rate = 0.2;
  Rng rng(seed);
  System sys = generate_jobshop(cfg, rng);
  assign_proportional_deadline_monotonic(sys);
  return sys;
}

TEST(PhaseMod, SingleHopMatchesHolistic) {
  System sys(1, SchedulerKind::kSpp);
  sys.add_job(periodic_job("Hi", 4.0, 4.0, {{0, 1.0, 1}}));
  sys.add_job(periodic_job("Lo", 6.0, 6.0, {{0, 2.0, 2}}));
  const AnalysisResult pm = PhaseModAnalyzer().analyze(sys);
  const AnalysisResult ds = HolisticAnalyzer().analyze(sys);
  ASSERT_TRUE(pm.ok && ds.ok);
  EXPECT_DOUBLE_EQ(pm.jobs[0].wcrt, ds.jobs[0].wcrt);
  EXPECT_DOUBLE_EQ(pm.jobs[1].wcrt, ds.jobs[1].wcrt);
}

TEST(PhaseMod, OffsetsAccumulateHopBounds) {
  System sys(2, SchedulerKind::kSpp);
  sys.add_job(periodic_job("A", 10.0, 30.0, {{0, 1.0, 1}, {1, 2.0, 1}}));
  PhaseSchedule schedule;
  const AnalysisResult r = PhaseModAnalyzer().analyze(sys, &schedule);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(schedule.offsets[0].size(), 2u);
  EXPECT_DOUBLE_EQ(schedule.offsets[0][0], 0.0);
  EXPECT_DOUBLE_EQ(schedule.offsets[0][1], 1.0);  // hop 0 bound
  EXPECT_DOUBLE_EQ(r.jobs[0].wcrt, 3.0);
}

TEST(PhaseMod, SimulatorWaitsForSlot) {
  // One job, two hops; slot for hop 2 is at offset 5 even though hop 1
  // finishes at 1.
  System sys(2, SchedulerKind::kSpp);
  sys.add_job(periodic_job("A", 10.0, 30.0, {{0, 1.0, 1}, {1, 2.0, 1}}, 30.0));
  PhaseSchedule schedule;
  schedule.offsets = {{0.0, 5.0}};
  const SimResult s = simulate_phased(sys, schedule, 60.0);
  ASSERT_TRUE(s.all_completed);
  EXPECT_DOUBLE_EQ(s.traces[0][0].hop_complete[0], 1.0);
  EXPECT_DOUBLE_EQ(s.traces[0][0].hop_release[1], 5.0);   // waited
  EXPECT_DOUBLE_EQ(s.traces[0][0].hop_complete[1], 7.0);
  // Second instance: released at 10, slot at 15.
  EXPECT_DOUBLE_EQ(s.traces[0][1].hop_release[1], 15.0);
}

TEST(PhaseMod, LatePredecessorFallsBackToCompletion) {
  // Slot earlier than the predecessor's completion: release at completion.
  System sys(2, SchedulerKind::kSpp);
  sys.add_job(periodic_job("A", 20.0, 40.0, {{0, 3.0, 1}, {1, 1.0, 1}}, 20.0));
  PhaseSchedule schedule;
  schedule.offsets = {{0.0, 1.0}};  // too optimistic
  const SimResult s = simulate_phased(sys, schedule, 60.0);
  EXPECT_DOUBLE_EQ(s.traces[0][0].hop_release[1], 3.0);
}

TEST(PhaseMod, PhasedArrivalsArePeriodicPerHop) {
  // With analyzer-derived offsets, every hop's releases are exactly
  // periodic: slot = release_m + const (the slot always dominates).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const System sys = periodic_shop(seed, 3);
    PhaseSchedule schedule;
    const AnalysisResult r = PhaseModAnalyzer().analyze(sys, &schedule);
    ASSERT_TRUE(r.ok) << r.error;
    if (!r.all_schedulable()) continue;
    const SimResult s =
        simulate_phased(sys, schedule, default_horizon(sys, AnalysisConfig{}));
    for (int k = 0; k < sys.job_count(); ++k) {
      for (std::size_t h = 1; h < sys.job(k).chain.size(); ++h) {
        for (std::size_t m = 0; m < s.traces[k].size(); ++m) {
          if (!std::isfinite(s.traces[k][m].hop_release[h])) continue;
          EXPECT_NEAR(s.traces[k][m].hop_release[h],
                      sys.job(k).arrivals.release(m + 1) +
                          schedule.offsets[k][h],
                      1e-6)
              << "seed " << seed << " job " << k << " hop " << h;
        }
      }
    }
    // And the run is still a legal schedule.
    EXPECT_TRUE(check_simulation_invariants(sys, s).empty());
  }
}

TEST(PhaseMod, BoundDominatesPhasedSimulation) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const System sys = periodic_shop(seed, 3);
    PhaseSchedule schedule;
    const AnalysisResult r = PhaseModAnalyzer().analyze(sys, &schedule);
    ASSERT_TRUE(r.ok) << r.error;
    const SimResult s =
        simulate_phased(sys, schedule, default_horizon(sys, AnalysisConfig{}));
    for (int k = 0; k < sys.job_count(); ++k) {
      if (std::isinf(r.jobs[k].wcrt)) continue;
      EXPECT_GE(r.jobs[k].wcrt, s.worst_response[k] - 1e-6)
          << "seed " << seed << " job " << k;
    }
  }
}

TEST(PhaseMod, NeverLooserThanHolisticDS) {
  // Zero jitter per hop can only shrink the busy-period bounds, so
  // PM <= holistic DS for every job (the intro's motivation for
  // synchronization).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const System sys = periodic_shop(seed, 4);
    const AnalysisResult pm = PhaseModAnalyzer().analyze(sys);
    const AnalysisResult ds = HolisticAnalyzer().analyze(sys);
    ASSERT_TRUE(pm.ok && ds.ok);
    for (int k = 0; k < sys.job_count(); ++k) {
      if (std::isinf(ds.jobs[k].wcrt)) continue;
      EXPECT_LE(pm.jobs[k].wcrt, ds.jobs[k].wcrt + 1e-6)
          << "seed " << seed << " job " << k;
    }
  }
}

TEST(PhaseMod, IncreasesAverageResponseVsDirectSync) {
  // PM inserts idle waits, so across many systems the mean end-to-end
  // response grows relative to direct synchronization ([1]'s trade-off).
  double ds_sum = 0.0, pm_sum = 0.0;
  std::size_t n = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const System sys = periodic_shop(seed, 3);
    PhaseSchedule schedule;
    const AnalysisResult r = PhaseModAnalyzer().analyze(sys, &schedule);
    if (!r.ok || !r.all_schedulable()) continue;
    const Time horizon = default_horizon(sys, AnalysisConfig{});
    const SimResult ds = simulate(sys, horizon);
    const SimResult pm = simulate_phased(sys, schedule, horizon);
    for (int k = 0; k < sys.job_count(); ++k) {
      for (std::size_t m = 0; m < ds.traces[k].size(); ++m) {
        if (!ds.traces[k][m].completed() || !pm.traces[k][m].completed()) {
          continue;
        }
        ds_sum += ds.traces[k][m].response();
        pm_sum += pm.traces[k][m].response();
        ++n;
      }
    }
  }
  ASSERT_GT(n, 100u);
  EXPECT_GT(pm_sum / static_cast<double>(n),
            ds_sum / static_cast<double>(n));
}

TEST(PhaseMod, RejectsAperiodicAndNonSpp) {
  System fcfs(1, SchedulerKind::kFcfs);
  fcfs.add_job(periodic_job("A", 5.0, 5.0, {{0, 1.0, 0}}));
  EXPECT_FALSE(PhaseModAnalyzer().analyze(fcfs).ok);

  System sys(1, SchedulerKind::kSpp);
  Job j;
  j.name = "burst";
  j.deadline = 10.0;
  j.chain = {{0, 1.0, 1}};
  j.arrivals = ArrivalSequence(std::vector<Time>{0.0, 1.0, 4.0});
  sys.add_job(std::move(j));
  EXPECT_FALSE(PhaseModAnalyzer().analyze(sys).ok);
}

}  // namespace
}  // namespace rta
