// Randomized differential harness for the parallel, memoizing analysis
// engine (Choi/Oh/Ha's cross-validation idea turned into a test): on a few
// hundred random job-shop systems the parallel + cached engines must return
// BIT-IDENTICAL end-to-end bounds d_k and per-hop bounds d_{k,j} to the
// serial, uncached engine, for every thread count. Exact double equality --
// not approximate -- because the engine's determinism contract promises the
// same arithmetic, not merely close results.
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "analysis/iterative.hpp"
#include "model/priority.hpp"
#include "util/rng.hpp"
#include "workload/jobshop.hpp"

namespace rta {
namespace {

constexpr int kSystemsPerScheduler = 70;  // 3 schedulers -> 210 systems total

std::vector<int> thread_counts() {
  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<int> counts = {1, 2};
  if (hw > 2) counts.push_back(static_cast<int>(hw));
  return counts;
}

System random_system(Rng& rng, SchedulerKind scheduler) {
  JobShopConfig cfg;
  cfg.stages = static_cast<std::size_t>(rng.uniform_int(1, 3));
  cfg.processors_per_stage = static_cast<std::size_t>(rng.uniform_int(1, 2));
  cfg.jobs = static_cast<std::size_t>(rng.uniform_int(2, 5));
  cfg.pattern = rng.uniform_int(0, 1) == 0 ? ArrivalPattern::kPeriodic
                                           : ArrivalPattern::kAperiodic;
  cfg.utilization = rng.uniform(0.3, 1.1);
  cfg.window_periods = 4.0;
  cfg.deadline.period_multiple = rng.uniform(2.0, 4.0);
  cfg.scheduler = scheduler;
  System system = generate_jobshop(cfg, rng);
  assign_proportional_deadline_monotonic(system);
  return system;
}

/// Bitwise comparison of everything the analysis reports: d_k (wcrt),
/// d_{k,j} (local bounds), schedulability, and the horizon used.
void expect_bit_identical(const AnalysisResult& serial,
                          const AnalysisResult& other,
                          const std::string& label) {
  ASSERT_EQ(serial.ok, other.ok) << label;
  if (!serial.ok) return;
  ASSERT_EQ(serial.jobs.size(), other.jobs.size()) << label;
  EXPECT_EQ(serial.horizon, other.horizon) << label;
  for (std::size_t k = 0; k < serial.jobs.size(); ++k) {
    const JobReport& a = serial.jobs[k];
    const JobReport& b = other.jobs[k];
    // NaN never appears (bounds are sums of finite or +inf terms); plain ==
    // therefore tests bit-identity including the infinity cases.
    EXPECT_EQ(a.wcrt, b.wcrt) << label << " job " << k;
    EXPECT_EQ(a.schedulable, b.schedulable) << label << " job " << k;
    ASSERT_EQ(a.hops.size(), b.hops.size()) << label << " job " << k;
    for (std::size_t h = 0; h < a.hops.size(); ++h) {
      EXPECT_EQ(a.hops[h].local_bound, b.hops[h].local_bound)
          << label << " job " << k << " hop " << h;
    }
  }
}

AnalysisConfig engine_config(int threads, bool cache) {
  AnalysisConfig cfg;
  cfg.threads = threads;
  cfg.use_curve_cache = cache;
  return cfg;
}

void run_differential(SchedulerKind scheduler, std::uint64_t base_seed) {
  const RngFactory factory(base_seed);
  const std::vector<int> counts = thread_counts();
  for (int trial = 0; trial < kSystemsPerScheduler; ++trial) {
    Rng rng = factory.stream(static_cast<std::uint64_t>(trial));
    const System system = random_system(rng, scheduler);

    const AnalysisConfig serial_cfg = engine_config(1, false);
    const AnalysisResult serial_direct =
        BoundsAnalyzer(serial_cfg).analyze(system);
    const AnalysisResult serial_iterative =
        IterativeBoundsAnalyzer(serial_cfg).analyze(system);

    for (const int threads : counts) {
      const AnalysisConfig cfg = engine_config(threads, true);
      const std::string label = std::string(to_string(scheduler)) + " trial " +
                                std::to_string(trial) + " threads " +
                                std::to_string(threads);
      expect_bit_identical(serial_direct, BoundsAnalyzer(cfg).analyze(system),
                           "direct " + label);
      expect_bit_identical(serial_iterative,
                           IterativeBoundsAnalyzer(cfg).analyze(system),
                           "iterative " + label);
    }
  }
}

TEST(DifferentialEngine, SppParallelCachedMatchesSerial) {
  run_differential(SchedulerKind::kSpp, 0xD1FF5EED);
}

TEST(DifferentialEngine, SpnpParallelCachedMatchesSerial) {
  run_differential(SchedulerKind::kSpnp, 0xD1FF5EED ^ 0xBEEF);
}

TEST(DifferentialEngine, FcfsParallelCachedMatchesSerial) {
  run_differential(SchedulerKind::kFcfs, 0xD1FF5EED ^ 0xF0F0);
}

// The cache alone (serial engine) must also be invisible, including for the
// paper-literal bound variant used by the soundness ablation.
TEST(DifferentialEngine, CacheIsInvisibleForLiteralVariant) {
  const RngFactory factory(77);
  for (int trial = 0; trial < 20; ++trial) {
    Rng rng = factory.stream(static_cast<std::uint64_t>(trial));
    const System system = random_system(rng, SchedulerKind::kSpnp);
    AnalysisConfig plain = engine_config(1, false);
    plain.bounds_variant = BoundsVariant::kPaperLiteral;
    AnalysisConfig cached = engine_config(2, true);
    cached.bounds_variant = BoundsVariant::kPaperLiteral;
    expect_bit_identical(BoundsAnalyzer(plain).analyze(system),
                         BoundsAnalyzer(cached).analyze(system),
                         "literal trial " + std::to_string(trial));
  }
}

// Re-analyzing different systems through ONE analyzer instance reuses its
// cache across systems; stale entries must never leak into the results.
TEST(DifferentialEngine, CacheReuseAcrossSystemsIsInvisible) {
  const RngFactory factory(1234);
  const AnalysisConfig cfg = engine_config(2, true);
  IterativeBoundsAnalyzer reused(cfg);
  for (int trial = 0; trial < 20; ++trial) {
    Rng rng = factory.stream(static_cast<std::uint64_t>(trial));
    const System system = random_system(rng, SchedulerKind::kSpp);
    const AnalysisResult fresh =
        IterativeBoundsAnalyzer(engine_config(1, false)).analyze(system);
    expect_bit_identical(fresh, reused.analyze(system),
                         "reuse trial " + std::to_string(trial));
  }
  ASSERT_NE(reused.curve_cache(), nullptr);
  EXPECT_GT(reused.curve_cache()->stats().hits(), 0u);
}

}  // namespace
}  // namespace rta
