// Tests for the approximate bounds analyzer on priority processors (§4.2.2):
// blocking effects, Eq. 12 local delays, heterogeneous systems, and the
// counterexample showing why Eq. 17's printed interference term (subtracting
// lower bounds of higher-priority service) is unsound.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bounds.hpp"
#include "analysis/spp_exact.hpp"
#include "sim/simulator.hpp"

namespace rta {
namespace {

Job make_job(const std::string& name, double deadline,
             std::vector<Subjob> chain, std::vector<Time> releases) {
  Job j;
  j.name = name;
  j.deadline = deadline;
  j.chain = std::move(chain);
  j.arrivals = ArrivalSequence(std::move(releases));
  return j;
}

TEST(Bounds, SingleJobNoInterference) {
  System sys(1, SchedulerKind::kSpnp);
  sys.add_job(make_job("A", 10.0, {{0, 2.0, 1}}, {0.0, 5.0}));
  const AnalysisResult r = BoundsAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  // No lower-priority subjobs -> b = 0; the bound is exact here.
  EXPECT_NEAR(r.jobs[0].wcrt, 2.0, 1e-9);
  EXPECT_TRUE(r.jobs[0].schedulable);
}

TEST(Bounds, BlockingChargedToHighPriority) {
  // High (prio 1, tau 1, released at 0) can be blocked by Low (prio 2,
  // tau 4): worst-case completion 1 + 4 = 5 under SPNP.
  System sys(1, SchedulerKind::kSpnp);
  sys.add_job(make_job("High", 10.0, {{0, 1.0, 1}}, {0.0}));
  sys.add_job(make_job("Low", 10.0, {{0, 4.0, 2}}, {0.0}));
  const AnalysisResult r = BoundsAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NEAR(r.jobs[0].wcrt, 5.0, 1e-9);
  // The simulator (ties: job 0 first) completes High at 1; the bound must
  // cover the adversarial tie order.
  const SimResult s = simulate(sys, 20.0);
  EXPECT_DOUBLE_EQ(s.worst_response[0], 1.0);
  EXPECT_GE(r.jobs[0].wcrt, s.worst_response[0]);
}

TEST(Bounds, SppVariantHasNoBlocking) {
  System sys(1, SchedulerKind::kSpp);
  sys.add_job(make_job("High", 10.0, {{0, 1.0, 1}}, {0.0}));
  sys.add_job(make_job("Low", 10.0, {{0, 4.0, 2}}, {0.0}));
  const AnalysisResult r = BoundsAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NEAR(r.jobs[0].wcrt, 1.0, 1e-9);   // preempts immediately
  EXPECT_NEAR(r.jobs[1].wcrt, 5.0, 1e-9);   // suffers the interference
}

TEST(Bounds, Eq17PrintedFormIsUnsound) {
  // The counterexample from bounds.hpp: H (prio 1, tau 1) and L (prio 2,
  // tau 1), both released at 0 on one SPNP processor (no blocking for L).
  // Eq. 17 as printed computes L's availability as t - b_L - S̲_H(t) with
  // S̲_H(t) = max(0, min(t - 1, 1)) (H can be blocked by L for 1 unit), so
  // B_L(1) = 1 - 0 = 1 and the printed S̲_L(1) = 1: it claims L received a
  // full unit of service by t = 1, but the scheduler runs H first, so L has
  // received nothing. Our implementation must stay at/below the simulation.
  System sys(1, SchedulerKind::kSpnp);
  sys.add_job(make_job("H", 10.0, {{0, 1.0, 1}}, {0.0}));
  sys.add_job(make_job("L", 10.0, {{0, 1.0, 2}}, {0.0}));
  AnalysisConfig cfg;
  cfg.record_curves = true;
  const AnalysisResult r = BoundsAnalyzer(cfg).analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  const PwlCurve& low_svc_lower = r.jobs[1].hops[0].curves[0].service_lower;
  // The printed form would give 1.0 here; the sound bound must be 0.
  EXPECT_LE(low_svc_lower.eval(1.0), 0.0 + 1e-9);
  // And L's response bound covers the worst case (runs after H): 2.
  EXPECT_GE(r.jobs[1].wcrt, 2.0 - 1e-9);
}

TEST(Bounds, BlockingChargedPerBusyPeriod) {
  // Theorem 5's literal window charges b once globally. Two well-separated
  // instances of High must EACH budget for blocking by Low-ish work.
  // High: tau 1 at t = 0 and t = 100. Low: tau 2 released at 0 and 99.9.
  System sys(1, SchedulerKind::kSpnp);
  sys.add_job(make_job("High", 10.0, {{0, 1.0, 1}}, {0.0, 100.0}));
  sys.add_job(make_job("Low", 200.0, {{0, 2.0, 2}}, {0.0, 99.9}));
  const AnalysisResult r = BoundsAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  const SimResult s = simulate(sys, 300.0);
  // Simulated: instance 2 of High arrives at 100 while Low (started 99.9)
  // blocks until 101.9; completion 102.9 -> response 2.9.
  EXPECT_NEAR(s.worst_response[0], 2.9, 1e-9);
  EXPECT_GE(r.jobs[0].wcrt, s.worst_response[0] - 1e-9);
}

TEST(Bounds, LocalDelayBoundEq12) {
  const PwlCurve arr = PwlCurve::step(10.0, {0.0, 2.0});
  const PwlCurve dep = PwlCurve::step(10.0, {1.5, 4.0});
  EXPECT_NEAR(detail::local_delay_bound(dep, arr), 2.0, 1e-12);
}

TEST(Bounds, LocalDelayBoundUnboundedWithinHorizon) {
  const PwlCurve arr = PwlCurve::step(10.0, {0.0, 2.0});
  const PwlCurve dep = PwlCurve::step(10.0, {1.5});  // 2nd never departs
  EXPECT_TRUE(std::isinf(detail::local_delay_bound(dep, arr)));
}

TEST(Bounds, EndToEndIsSumOfLocalBounds) {
  System sys(2, SchedulerKind::kSpnp);
  sys.add_job(make_job("A", 20.0, {{0, 1.0, 1}, {1, 2.0, 1}}, {0.0, 6.0}));
  const AnalysisResult r = BoundsAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  double total = 0.0;
  for (const auto& hop : r.jobs[0].hops) total += hop.local_bound;
  EXPECT_NEAR(r.jobs[0].wcrt, total, 1e-12);
}

TEST(Bounds, HeterogeneousSchedulersSupported) {
  System sys(3, SchedulerKind::kSpp);
  sys.set_scheduler(1, SchedulerKind::kSpnp);
  sys.set_scheduler(2, SchedulerKind::kFcfs);
  sys.add_job(make_job("A", 30.0, {{0, 1.0, 1}, {1, 1.0, 1}, {2, 1.0, 0}},
                       {0.0, 4.0}));
  sys.add_job(make_job("B", 30.0, {{0, 0.5, 2}, {1, 0.5, 2}, {2, 0.5, 0}},
                       {0.5, 4.5}));
  const AnalysisResult r = BoundsAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  const SimResult s = simulate(sys, r.horizon);
  ASSERT_TRUE(s.all_completed);
  for (int k = 0; k < 2; ++k) {
    EXPECT_GE(r.jobs[k].wcrt, s.worst_response[k] - 1e-9) << "job " << k;
  }
}

TEST(Bounds, RejectsCyclicTopology) {
  System sys(2, SchedulerKind::kSpnp);
  sys.add_job(make_job("Tk", 10.0, {{0, 1.0, 2}, {1, 1.0, 1}}, {0.0}));
  sys.add_job(make_job("Tn", 10.0, {{1, 1.0, 2}, {0, 1.0, 1}}, {0.0}));
  const AnalysisResult r = BoundsAnalyzer().analyze(sys);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("Iterative"), std::string::npos);
}

TEST(Bounds, HorizonDoublingResolvesTightWindows) {
  // A long pipeline whose completion falls beyond the initial horizon
  // padding: the analyzer doubles the horizon instead of reporting infinity.
  System sys(1, SchedulerKind::kSpnp);
  // deadline tiny -> initial padding small; exec pushes completion out.
  sys.add_job(make_job("A", 0.5, {{0, 3.0, 1}}, {0.0, 0.1, 0.2, 0.3}));
  AnalysisConfig cfg;
  cfg.max_horizon_doublings = 6;  // initial horizon 1.3; completion at 12
  const AnalysisResult r = BoundsAnalyzer(cfg).analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(std::isfinite(r.jobs[0].wcrt));
  EXPECT_NEAR(r.jobs[0].wcrt, 11.7, 1e-6);  // 4th instance: 12 - 0.3
  EXPECT_FALSE(r.jobs[0].schedulable);
}

}  // namespace
}  // namespace rta
