// Parametric schedulability regions (service/region.hpp).
//
// The load-bearing property: every boundary the analyzer reports is
// *certified* -- re-running a fresh, from-scratch BoundsAnalyzer on the
// transformed system (RegionAnalyzer::apply_axes) must agree that the
// feasible endpoint is schedulable and the infeasible endpoint is not.
// That closes the loop on the incremental-probing shortcut: whatever path
// a probe took (dirty-closure what_if or full re-analysis), the verdict
// matches the reference analysis.
#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "service/region.hpp"
#include "analysis/result.hpp"
#include "model/priority.hpp"
#include "util/rng.hpp"
#include "workload/jobshop.hpp"

namespace rta {
namespace {

System make_shop(std::uint64_t seed, double utilization = 0.55) {
  Rng rng(seed);
  JobShopConfig cfg;
  cfg.stages = 3;
  cfg.processors_per_stage = 2;
  cfg.jobs = 5;
  cfg.utilization = utilization;
  cfg.scheduler = SchedulerKind::kSpp;
  System system = generate_jobshop(cfg, rng);
  assign_proportional_deadline_monotonic(system);
  return system;
}

/// Schedulability of apply_axes(base, query, values) by a fresh analyzer --
/// the independent certification path the header's determinism contract
/// names.
bool fresh_verdict(const System& base, const RegionQuery& query,
                   const std::vector<double>& values, Time horizon) {
  System sys;
  std::string error;
  EXPECT_TRUE(RegionAnalyzer::apply_axes(base, query, values, sys, error))
      << error;
  AnalysisConfig cfg;
  cfg.horizon = horizon;
  const AnalysisResult r = BoundsAnalyzer(cfg).analyze(sys);
  EXPECT_TRUE(r.ok) << r.error;
  return r.all_schedulable();
}

/// Certify a closed 1-D boundary: feasible side admits, infeasible side
/// does not, and the bracket is within tolerance.
void certify_boundary(const System& base, const RegionQuery& query,
                      const RegionResult& r) {
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_FALSE(r.boundary.empty);
  ASSERT_FALSE(r.boundary.open);
  EXPECT_LT(r.boundary.feasible, r.boundary.infeasible);
  EXPECT_TRUE(fresh_verdict(base, query, {r.boundary.feasible}, r.horizon));
  EXPECT_FALSE(fresh_verdict(base, query, {r.boundary.infeasible}, r.horizon));
}

TEST(Region, ExecScaleBoundaryIsCertified) {
  const System base = make_shop(1);
  RegionQuery q;
  q.target = base.job(0).name;
  q.axes.push_back(RegionAxis{RegionParam::kExecScale, RegionScope::kJob, -1,
                              1.0, 64.0});
  RegionAnalyzer analyzer(base);
  const RegionResult r = analyzer.run(q);
  certify_boundary(base, q, r);
  EXPECT_LE(r.boundary.infeasible - r.boundary.feasible, q.tolerance);
  EXPECT_GT(r.probes, 2);
  EXPECT_EQ(r.probes, r.boundary.probes);
}

TEST(Region, RateScaleBoundaryIsCertified) {
  const System base = make_shop(2, /*utilization=*/0.65);
  RegionQuery q;
  q.target = base.job(1).name;
  q.axes.push_back(RegionAxis{RegionParam::kRateScale, RegionScope::kJob, -1,
                              1.0, 256.0});
  RegionAnalyzer analyzer(base);
  const RegionResult r = analyzer.run(q);
  ASSERT_TRUE(r.ok) << r.error;
  if (!r.boundary.empty && !r.boundary.open) certify_boundary(base, q, r);
}

TEST(Region, BurstBoundaryIsIntegralAndCertified) {
  const System base = make_shop(3, /*utilization=*/0.65);
  RegionQuery q;
  q.target = base.job(2).name;
  q.axes.push_back(
      RegionAxis{RegionParam::kBurst, RegionScope::kJob, -1, 0.0, 4096.0});
  RegionAnalyzer analyzer(base);
  const RegionResult r = analyzer.run(q);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_FALSE(r.boundary.open) << "burst cap too low to close the boundary";
  ASSERT_FALSE(r.boundary.empty);
  // Burst is searched over integers: the bracket closes to adjacent counts.
  EXPECT_EQ(r.boundary.feasible, std::floor(r.boundary.feasible));
  EXPECT_EQ(r.boundary.infeasible, std::floor(r.boundary.infeasible));
  EXPECT_EQ(r.boundary.infeasible - r.boundary.feasible, 1.0);
  certify_boundary(base, q, r);
}

TEST(Region, InfeasibleAtLoIsEmpty) {
  const System base = make_shop(1);
  RegionQuery q;
  q.target = base.job(0).name;
  // Start the bracket far above the job's certified boundary.
  q.axes.push_back(RegionAxis{RegionParam::kExecScale, RegionScope::kJob, -1,
                              4096.0, 8192.0});
  RegionAnalyzer analyzer(base);
  const RegionResult r = analyzer.run(q);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.boundary.empty);
  EXPECT_FALSE(r.boundary.open);
  EXPECT_EQ(r.boundary.infeasible, 4096.0);
  EXPECT_FALSE(fresh_verdict(base, q, {4096.0}, r.horizon));
  EXPECT_EQ(r.probes, 1);  // lo infeasible short-circuits
}

TEST(Region, FeasibleAtHiIsOpen) {
  const System base = make_shop(1);
  RegionQuery q;
  q.target = base.job(0).name;
  // A bracket well inside the feasible region stays open.
  q.axes.push_back(RegionAxis{RegionParam::kExecScale, RegionScope::kJob, -1,
                              1.0, 1.01});
  RegionAnalyzer analyzer(base);
  const RegionResult r = analyzer.run(q);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.boundary.open);
  EXPECT_FALSE(r.boundary.empty);
  EXPECT_EQ(r.boundary.feasible, 1.01);
  EXPECT_TRUE(fresh_verdict(base, q, {1.01}, r.horizon));
  EXPECT_EQ(r.probes, 2);  // lo + hi, no bisection
}

/// Degenerate single-hop, single-job system: the region machinery works at
/// the smallest possible extent and the boundary is still certified.
TEST(Region, DegenerateSingleHopSystem) {
  System base(1, SchedulerKind::kSpp);
  Job solo;
  solo.name = "solo";
  solo.deadline = 10.0;
  solo.chain.push_back(Subjob{0, 2.0, 0});
  solo.arrivals = ArrivalSequence::periodic(20.0, 100.0);
  base.add_job(std::move(solo));

  RegionQuery q;
  q.target = "solo";
  q.axes.push_back(RegionAxis{RegionParam::kExecScale, RegionScope::kJob, -1,
                              1.0, 64.0});
  RegionAnalyzer analyzer(base);
  const RegionResult r = analyzer.run(q);
  certify_boundary(base, q, r);
  // An isolated 2-exec job with deadline 10 misses exactly past scale 5.
  EXPECT_LE(r.boundary.feasible, 5.0);
  EXPECT_GT(r.boundary.infeasible, 5.0 - q.tolerance);
}

TEST(Region, GlobalScopeUsesFullAnalysisPath) {
  const System base = make_shop(4, /*utilization=*/0.5);
  RegionQuery q;
  q.axes.push_back(RegionAxis{RegionParam::kExecScale, RegionScope::kGlobal,
                              -1, 1.0, 64.0});
  RegionAnalyzer analyzer(base);
  const RegionResult r = analyzer.run(q);
  certify_boundary(base, q, r);
  EXPECT_EQ(r.incremental_probes, 0);  // global axes cannot probe via what_if
}

TEST(Region, TwoDimensionalColumnsAreMonotoneAndCertified) {
  const System base = make_shop(5, /*utilization=*/0.6);
  RegionQuery q;
  q.target = base.job(0).name;
  q.axes.push_back(RegionAxis{RegionParam::kExecScale, RegionScope::kJob, -1,
                              1.0, 8.0});
  q.axes.push_back(
      RegionAxis{RegionParam::kBurst, RegionScope::kJob, -1, 0.0, 1024.0});
  q.columns = 4;
  RegionAnalyzer analyzer(base);
  const RegionResult r = analyzer.run(q);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.columns.size(), 4u);
  EXPECT_EQ(r.columns.front().value, 1.0);
  EXPECT_EQ(r.columns.back().value, 8.0);

  // Downward closure across the grid: more exec scale never admits more
  // burst. (Open columns count as unbounded.)
  double prev = std::numeric_limits<double>::infinity();
  for (const RegionColumn& col : r.columns) {
    ASSERT_FALSE(col.boundary.empty && col.boundary.open);
    const double limit = col.boundary.open
                             ? std::numeric_limits<double>::infinity()
                             : (col.boundary.empty ? -1.0
                                                   : col.boundary.feasible);
    EXPECT_LE(limit, prev) << "column at " << col.value;
    prev = limit;
    if (!col.boundary.empty && !col.boundary.open) {
      EXPECT_TRUE(fresh_verdict(base, q,
                                {col.value, col.boundary.feasible},
                                r.horizon));
      EXPECT_FALSE(fresh_verdict(base, q,
                                 {col.value, col.boundary.infeasible},
                                 r.horizon));
    }
  }
}

/// The 2-D fan-out contract: serial and parallel column probing serialize
/// to the same bytes (region_result_value is deterministic field-for-field).
TEST(Region, TwoDimensionalParallelMatchesSerialByteForByte) {
  const System base = make_shop(6, /*utilization=*/0.6);
  RegionQuery q;
  q.target = base.job(1).name;
  q.axes.push_back(RegionAxis{RegionParam::kExecScale, RegionScope::kJob, -1,
                              1.0, 6.0});
  q.axes.push_back(
      RegionAxis{RegionParam::kBurst, RegionScope::kJob, -1, 0.0, 512.0});
  q.columns = 6;

  std::string dumps[2];
  const int threads[2] = {1, 0};  // serial vs hardware concurrency
  for (int i = 0; i < 2; ++i) {
    service::SessionConfig cfg;
    cfg.analysis.threads = threads[i];
    RegionAnalyzer analyzer(base, cfg);
    const RegionResult r = analyzer.run(q);
    ASSERT_TRUE(r.ok) << r.error;
    dumps[i] = region_result_value(r).dump();
  }
  EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(Region, ValidationRejectsBadQueries) {
  const System base = make_shop(1);
  RegionAnalyzer analyzer(base);

  RegionQuery no_axes;
  EXPECT_FALSE(analyzer.run(no_axes).ok);

  RegionQuery bad_target;
  bad_target.target = "ghost";
  bad_target.axes.push_back(RegionAxis{});
  const RegionResult r = analyzer.run(bad_target);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "no job named 'ghost'");

  RegionQuery no_target;  // job-scoped axis without a target
  no_target.axes.push_back(RegionAxis{});
  EXPECT_FALSE(analyzer.run(no_target).ok);

  RegionQuery bad_bracket;
  bad_bracket.target = base.job(0).name;
  bad_bracket.axes.push_back(RegionAxis{RegionParam::kExecScale,
                                        RegionScope::kJob, -1, 5.0, 2.0});
  EXPECT_FALSE(analyzer.run(bad_bracket).ok);

  RegionQuery bad_burst_scope;
  bad_burst_scope.axes.push_back(RegionAxis{
      RegionParam::kBurst, RegionScope::kGlobal, -1, 0.0, 8.0});
  EXPECT_FALSE(analyzer.run(bad_burst_scope).ok);

  RegionQuery bad_processor;
  bad_processor.axes.push_back(RegionAxis{
      RegionParam::kExecScale, RegionScope::kProcessor, 99, 1.0, 8.0});
  EXPECT_FALSE(analyzer.run(bad_processor).ok);
}

}  // namespace
}  // namespace rta
