// Tests for the instrumentation layer (src/obs) and its engine integration:
// registry aggregation across threads, snapshot determinism for a fixed
// system at threads = 1, trace-event schema guarantees, and the referee for
// the whole layer -- instrumented and uninstrumented analyses are
// bit-identical for every thread count.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "analysis/iterative.hpp"
#include "io/json.hpp"
#include "model/priority.hpp"
#include "obs/kernel_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "service/admission_session.hpp"
#include "service/metrics_export.hpp"
#include "service/request_scheduler.hpp"
#include "util/rng.hpp"
#include "workload/jobshop.hpp"

namespace rta {
namespace {

System make_system(SchedulerKind kind, std::uint64_t seed = 7,
                   std::size_t jobs = 5) {
  JobShopConfig cfg;
  cfg.stages = 3;
  cfg.processors_per_stage = 2;
  cfg.jobs = jobs;
  cfg.pattern = ArrivalPattern::kPeriodic;
  cfg.utilization = 0.55;
  cfg.scheduler = kind;
  Rng rng(seed);
  System sys = generate_jobshop(cfg, rng);
  assign_proportional_deadline_monotonic(sys);
  return sys;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(Metrics, CountersAggregateAcrossThreads) {
  obs::MetricsRegistry registry;
  const obs::Counter counter = registry.counter("test.count");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& t : threads) t.join();
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("test.count"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, HistogramBucketsCountAndSum) {
  obs::MetricsRegistry registry;
  const obs::Histogram h = registry.histogram("test.hist", {1.0, 10.0});
  h.observe(0.5);   // bucket 0 (<= 1)
  h.observe(1.0);   // bucket 0 (boundary inclusive)
  h.observe(5.0);   // bucket 1 (<= 10)
  h.observe(99.0);  // overflow bucket
  const obs::HistogramSnapshot snap =
      registry.snapshot().histograms.at("test.hist");
  ASSERT_EQ(snap.counts.size(), 3u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 105.5);
  EXPECT_DOUBLE_EQ(snap.max, 99.0);
}

TEST(Metrics, HistogramAggregatesAcrossThreads) {
  obs::MetricsRegistry registry;
  const obs::Histogram h =
      registry.histogram("test.hist", obs::MetricsRegistry::knot_buckets());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  const obs::HistogramSnapshot snap =
      registry.snapshot().histograms.at("test.hist");
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.sum, 1000.0 * (1 + 2 + 3 + 4));
  EXPECT_DOUBLE_EQ(snap.max, 4.0);
}

TEST(Metrics, GaugeSetAndRecordMax) {
  obs::MetricsRegistry registry;
  const obs::Gauge g = registry.gauge("test.gauge");
  g.set(3.0);
  g.set(1.5);
  EXPECT_DOUBLE_EQ(registry.snapshot().gauges.at("test.gauge"), 1.5);
  g.record_max(4.0);
  g.record_max(2.0);  // below the max: ignored
  EXPECT_DOUBLE_EQ(registry.snapshot().gauges.at("test.gauge"), 4.0);
}

TEST(Metrics, ReResolvingANameYieldsTheSameMetric) {
  obs::MetricsRegistry registry;
  registry.counter("test.shared").add(2);
  registry.counter("test.shared").add(3);
  EXPECT_EQ(registry.snapshot().counters.at("test.shared"), 5u);
}

TEST(Metrics, SnapshotJsonRoundTripsStructurally) {
  obs::MetricsRegistry registry;
  registry.counter("c.one").add(7);
  registry.gauge("g.one").set(2.5);
  registry.histogram("h.one", {1.0, 2.0}).observe(1.5);
  const std::string json = registry.snapshot().to_json();
  // Spot checks; full schema validation lives in scripts/check_trace.py
  // (exercised by the cli_observability_check ctest entry).
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c.one\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"h.one\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer

TEST(Metrics, DefaultConstructedHandlesAreInertAndUnbound) {
  // The service's latency recording relies on bound(): an unbound handle
  // silently drops writes, so call sites can audit their binding.
  obs::Counter counter;
  obs::Gauge gauge;
  obs::Histogram histogram;
  EXPECT_FALSE(counter.bound());
  EXPECT_FALSE(gauge.bound());
  EXPECT_FALSE(histogram.bound());
  counter.inc();          // all dropped, no crash
  gauge.record_max(3.0);
  histogram.observe(1.0);

  obs::MetricsRegistry registry;
  EXPECT_TRUE(registry.counter("c").bound());
  EXPECT_TRUE(registry.gauge("g").bound());
  EXPECT_TRUE(
      registry
          .histogram("h", obs::MetricsRegistry::latency_buckets_us())
          .bound());
}

TEST(Metrics, HistogramQuantileMatchesBruteForceOracle) {
  // quantile(q) promises an estimate inside the bucket containing the exact
  // sample quantile. Randomized streams over the shared latency layout,
  // checked against a sorted-sample oracle.
  const std::vector<double>& bounds =
      obs::MetricsRegistry::latency_buckets_us();
  const RngFactory factory(0x0B5E55ED);
  for (int trial = 0; trial < 25; ++trial) {
    Rng rng = factory.stream(static_cast<std::uint64_t>(trial));
    obs::MetricsRegistry registry;
    const obs::Histogram h = registry.histogram("test.q", bounds);
    const int n = rng.uniform_int(1, 300);
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      // Spread across the buckets and past the last bound (overflow).
      const double v = rng.uniform(0.0, 2.0 * bounds.back());
      samples.push_back(v);
      h.observe(v);
    }
    std::sort(samples.begin(), samples.end());
    const obs::HistogramSnapshot snap =
        registry.snapshot().histograms.at("test.q");
    for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
      // Exact sample quantile: the ceil(q*n)-th order statistic.
      const std::size_t rank =
          q <= 0.0 ? 0
                   : static_cast<std::size_t>(
                         std::ceil(q * static_cast<double>(n))) -
                         1;
      const double exact = samples[std::min<std::size_t>(
          rank, static_cast<std::size_t>(n) - 1)];
      // The bucket holding that sample.
      const std::size_t bucket = static_cast<std::size_t>(
          std::lower_bound(bounds.begin(), bounds.end(), exact) -
          bounds.begin());
      const double lower = bucket == 0 ? 0.0 : bounds[bucket - 1];
      const double upper =
          bucket < bounds.size() ? bounds[bucket] : std::max(snap.max, lower);
      const double est = snap.quantile(q);
      EXPECT_GE(est, lower) << "trial " << trial << " q " << q;
      EXPECT_LE(est, upper) << "trial " << trial << " q " << q;
    }
    if (n > 0) {
      EXPECT_GT(snap.quantile(0.5), 0.0);
      EXPECT_LE(snap.quantile(0.5), snap.quantile(0.9));
      EXPECT_LE(snap.quantile(0.9), snap.quantile(0.99));
    }
  }
}

TEST(Metrics, HistogramQuantileOnEmptyHistogramIsZero) {
  obs::MetricsRegistry registry;
  const obs::Histogram h = registry.histogram(
      "test.empty", obs::MetricsRegistry::latency_buckets_us());
  EXPECT_TRUE(h.bound());  // registered but never observed
  const obs::HistogramSnapshot snap =
      registry.snapshot().histograms.at("test.empty");
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 0.0);
}

TEST(Metrics, HistogramQuantileClampsOutOfRangeProbabilities) {
  obs::MetricsRegistry registry;
  const obs::Histogram h = registry.histogram("test.clamp", {10.0, 20.0});
  h.observe(5.0);
  h.observe(15.0);
  const obs::HistogramSnapshot snap =
      registry.snapshot().histograms.at("test.clamp");
  EXPECT_DOUBLE_EQ(snap.quantile(-1.0), snap.quantile(0.0));
  EXPECT_DOUBLE_EQ(snap.quantile(2.0), snap.quantile(1.0));
}

TEST(Metrics, LatencyBucketsAreSharedAndExponential) {
  const std::vector<double>& buckets =
      obs::MetricsRegistry::latency_buckets_us();
  ASSERT_FALSE(buckets.empty());
  EXPECT_DOUBLE_EQ(buckets.front(), 10.0);
  EXPECT_GE(buckets.back(), 10000.0);
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_DOUBLE_EQ(buckets[i], 2.0 * buckets[i - 1]);
  }
  // Same object every call: histograms sharing the layout stay comparable.
  EXPECT_EQ(&buckets, &obs::MetricsRegistry::latency_buckets_us());
}

TEST(Trace, SpansProduceBalancedStrictlyIncreasingEvents) {
  obs::Tracer tracer;
  {
    obs::Tracer::Span outer = tracer.span("outer");
    {
      obs::Tracer::Span inner = tracer.span("inner", "{\"k\": 1}");
      tracer.instant("tick");
    }
    outer.annotate("{\"result\": 42}");
  }
  const std::vector<obs::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 5u);

  std::map<int, double> last_ts;
  std::map<int, std::vector<std::string>> open;
  for (const obs::TraceEvent& ev : events) {
    const auto it = last_ts.find(ev.tid);
    if (it != last_ts.end()) {
      EXPECT_GT(ev.ts_us, it->second) << "ts not strictly increasing";
    }
    last_ts[ev.tid] = ev.ts_us;
    if (ev.phase == 'B') {
      open[ev.tid].push_back(ev.name);
    } else if (ev.phase == 'E') {
      ASSERT_FALSE(open[ev.tid].empty()) << "E without B";
      EXPECT_EQ(open[ev.tid].back(), ev.name) << "spans must nest";
      open[ev.tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : open) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
  // annotate() lands on the closing event of the right span.
  EXPECT_EQ(events.back().name, "outer");
  EXPECT_EQ(events.back().phase, 'E');
  EXPECT_EQ(events.back().args, "{\"result\": 42}");
}

TEST(Trace, NullTracerHelpersAreInert) {
  obs::Tracer::Span span = obs::Tracer::span_if(nullptr, "nothing");
  span.annotate("{}");
  span.finish();
  obs::Tracer::instant_if(nullptr, "nothing");  // must not crash
}

TEST(Trace, ChromeJsonHasTraceEventsArray) {
  obs::Tracer tracer;
  { obs::Tracer::Span s = tracer.span("phase"); }
  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
}

TEST(Trace, EventsFromWorkerThreadsGetDistinctTids) {
  obs::Tracer tracer;
  tracer.instant("main");
  std::thread worker([&] { tracer.instant("worker"); });
  worker.join();
  std::set<int> tids;
  for (const obs::TraceEvent& ev : tracer.events()) tids.insert(ev.tid);
  EXPECT_EQ(tids.size(), 2u);
}

// ---------------------------------------------------------------------------
// Kernel sink plumbing

TEST(Trace, JsonlEmitsOneParseableEventPerLine) {
  obs::Tracer tracer;
  {
    obs::Tracer::Span outer = tracer.span("outer", "{\"k\": 1}");
    tracer.instant("tick");
    obs::Tracer::Span inner = tracer.span("inner");
  }
  const std::string jsonl = tracer.to_jsonl();
  std::istringstream lines(jsonl);
  std::string line;
  int events = 0;
  int depth = 0;
  bool saw_args = false;
  while (std::getline(lines, line)) {
    ++events;
    const json::ParseResult doc = json::parse(line);
    ASSERT_TRUE(doc.ok) << line;
    const json::Value* ts = doc.value.find("ts_us");
    ASSERT_NE(ts, nullptr) << line;
    EXPECT_TRUE(ts->is_number()) << line;
    const json::Value* name = doc.value.find("name");
    ASSERT_NE(name, nullptr) << line;
    EXPECT_FALSE(name->as_string().empty()) << line;
    const json::Value* ph = doc.value.find("ph");
    ASSERT_NE(ph, nullptr) << line;
    const std::string phase = ph->as_string();
    if (phase == "B") ++depth;
    if (phase == "E") --depth;
    EXPECT_GE(depth, 0) << line;
    if (doc.value.find("args") != nullptr) saw_args = true;
  }
  // outer B/E, inner B/E, one instant -- all on one thread, balanced.
  EXPECT_EQ(events, 5);
  EXPECT_EQ(depth, 0);
  EXPECT_TRUE(saw_args);  // outer's args round-trip as real JSON
}

// ---------------------------------------------------------------------------
// Trace context

TEST(TraceContext, MintedIdsAreDeterministicSixteenHexChars) {
  const std::string id = obs::mint_trace_id(3, "{\"op\": \"query\"}");
  EXPECT_EQ(id, obs::mint_trace_id(3, "{\"op\": \"query\"}"));
  ASSERT_EQ(id.size(), 16u);
  for (const char c : id) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)) &&
                !std::isupper(static_cast<unsigned char>(c)))
        << id;
  }
  // Byte-identical lines at different line numbers (a polling client) get
  // distinct ids; different bytes at one line number do too.
  EXPECT_NE(id, obs::mint_trace_id(4, "{\"op\": \"query\"}"));
  EXPECT_NE(id, obs::mint_trace_id(3, "{\"op\": \"stats\"}"));
}

TEST(KernelSink, ScopeInstallsAndRestores) {
  obs::MetricsRegistry registry;
  obs::KernelSink outer_sink(registry);
  obs::KernelSink inner_sink(registry);
  EXPECT_EQ(curve::kernel_hooks(), nullptr);
  {
    curve::KernelHooksScope outer(&outer_sink);
    EXPECT_EQ(curve::kernel_hooks(), &outer_sink);
    {
      curve::KernelHooksScope inner(&inner_sink);
      EXPECT_EQ(curve::kernel_hooks(), &inner_sink);
    }
    EXPECT_EQ(curve::kernel_hooks(), &outer_sink);
  }
  EXPECT_EQ(curve::kernel_hooks(), nullptr);
}

// ---------------------------------------------------------------------------
// Engine integration

/// All engine-relevant numbers of one analysis, for bitwise comparison.
std::vector<double> result_fingerprint(const AnalysisResult& r) {
  std::vector<double> out;
  out.push_back(r.ok ? 1.0 : 0.0);
  out.push_back(r.horizon);
  for (const JobReport& j : r.jobs) {
    out.push_back(j.wcrt);
    out.push_back(j.schedulable ? 1.0 : 0.0);
    for (const SubjobReport& hop : j.hops) out.push_back(hop.local_bound);
  }
  return out;
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b,
                          const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bitwise, not approximate: NaN-safe and catches sign/rounding drift.
    EXPECT_TRUE(std::memcmp(&a[i], &b[i], sizeof(double)) == 0)
        << label << " value " << i << ": " << a[i] << " vs " << b[i];
  }
}

std::vector<int> engine_thread_counts() {
  std::vector<int> counts = {1, 2};
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 2) counts.push_back(static_cast<int>(hw));
  return counts;
}

TEST(ObservedAnalysis, BoundsBitIdenticalWithObserverOnAcrossThreadCounts) {
  const System sys = make_system(SchedulerKind::kSpnp);
  AnalysisConfig plain;
  const std::vector<double> reference =
      result_fingerprint(BoundsAnalyzer(plain).analyze(sys));
  for (const int threads : engine_thread_counts()) {
    obs::MetricsRegistry registry;
    obs::Tracer tracer;
    AnalysisConfig cfg;
    cfg.threads = threads;
    cfg.observer.metrics = &registry;
    cfg.observer.tracer = &tracer;
    const std::vector<double> observed =
        result_fingerprint(BoundsAnalyzer(cfg).analyze(sys));
    expect_bitwise_equal(reference, observed,
                         "bounds threads=" + std::to_string(threads));
    EXPECT_GT(registry.snapshot().counters.at("bounds.units"), 0u);
  }
}

TEST(ObservedAnalysis, IterativeBitIdenticalWithObserverOnAcrossThreadCounts) {
  const System sys = make_system(SchedulerKind::kSpp);
  AnalysisConfig plain;
  const std::vector<double> reference =
      result_fingerprint(IterativeBoundsAnalyzer(plain).analyze(sys));
  for (const int threads : engine_thread_counts()) {
    obs::MetricsRegistry registry;
    obs::Tracer tracer;
    AnalysisConfig cfg;
    cfg.threads = threads;
    cfg.observer.metrics = &registry;
    cfg.observer.tracer = &tracer;
    const std::vector<double> observed =
        result_fingerprint(IterativeBoundsAnalyzer(cfg).analyze(sys));
    expect_bitwise_equal(reference, observed,
                         "iterative threads=" + std::to_string(threads));
    EXPECT_GT(registry.snapshot().counters.at("iterative.rounds"), 0u);
  }
}

/// Deterministic subset of a snapshot: everything except wall-clock-derived
/// metrics (the "_us"/"_ns" suffix convention of obs/metrics.hpp).
struct DeterministicView {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, obs::HistogramSnapshot> histograms;

  bool operator==(const DeterministicView&) const = default;
};

bool is_time_metric(const std::string& name) {
  const auto ends_with = [&](const char* suffix) {
    const std::string s(suffix);
    return name.size() >= s.size() &&
           name.compare(name.size() - s.size(), s.size(), s) == 0;
  };
  return ends_with("_us") || ends_with("_ns");
}

DeterministicView deterministic_view(const obs::MetricsSnapshot& snap) {
  DeterministicView v;
  for (const auto& [name, value] : snap.counters) {
    if (!is_time_metric(name)) v.counters.emplace(name, value);
  }
  for (const auto& [name, value] : snap.gauges) {
    if (!is_time_metric(name)) v.gauges.emplace(name, value);
  }
  v.histograms = snap.histograms;  // knot counts: never time-derived
  return v;
}

TEST(ObservedAnalysis, MetricsSnapshotDeterministicAtOneThread) {
  for (const SchedulerKind kind :
       {SchedulerKind::kSpp, SchedulerKind::kSpnp, SchedulerKind::kFcfs}) {
    const System sys = make_system(kind, /*seed=*/11);
    DeterministicView first;
    for (int run = 0; run < 3; ++run) {
      obs::MetricsRegistry registry;
      AnalysisConfig cfg;
      cfg.threads = 1;
      cfg.observer.metrics = &registry;
      (void)IterativeBoundsAnalyzer(cfg).analyze(sys);
      const DeterministicView view = deterministic_view(registry.snapshot());
      EXPECT_FALSE(view.counters.empty());
      if (run == 0) {
        first = view;
      } else {
        EXPECT_EQ(view, first) << "scheduler " << to_string(kind)
                               << " run " << run;
      }
    }
  }
}

TEST(ObservedAnalysis, KernelAndCacheCountersArePopulated) {
  const System sys = make_system(SchedulerKind::kSpnp);
  obs::MetricsRegistry registry;
  AnalysisConfig cfg;
  cfg.observer.metrics = &registry;
  (void)BoundsAnalyzer(cfg).analyze(sys);
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_GT(snap.counters.at("kernel.pointwise_ops"), 0u);
  EXPECT_GT(snap.counters.at("kernel.pinv_ops"), 0u);
  EXPECT_GT(snap.counters.at("curve_cache.pinv_misses"), 0u);
  // Hit verification happens whenever a lookup finds a candidate.
  EXPECT_GT(snap.counters.at("curve_cache.verifies"), 0u);
  const obs::HistogramSnapshot& knots =
      snap.histograms.at("kernel.pointwise_result_knots");
  EXPECT_GT(knots.count, 0u);
  EXPECT_GT(knots.max, 0.0);
}

TEST(ObservedAnalysis, TraceCoversWavefrontAndRounds) {
  const System sys = make_system(SchedulerKind::kSpp);
  obs::Tracer tracer;
  AnalysisConfig cfg;
  cfg.observer.tracer = &tracer;
  (void)IterativeBoundsAnalyzer(cfg).analyze(sys);
  std::set<std::string> names;
  for (const obs::TraceEvent& ev : tracer.events()) names.insert(ev.name);
  EXPECT_TRUE(names.count("iterative.analyze"));
  EXPECT_TRUE(names.count("iterative.round"));
  EXPECT_TRUE(names.count("iterative.pass_phase"));
  EXPECT_TRUE(names.count("iterative.propagate"));
  EXPECT_TRUE(names.count("iterative.final_pass"));
}

// ---------------------------------------------------------------------------
// Service metrics surface (src/service/metrics_export.*, request_scheduler)

/// Regression: the queue-depth gauge uses record_max, which never resets --
/// it is a high-water mark, not a live depth. It must therefore be named
/// service.queue_depth_max; the old name service.queue_depth (implying a
/// resettable level) must be gone from the snapshot.
TEST(ServiceObs, QueueDepthGaugeIsNamedAsHighWaterMark) {
  const System sys = make_system(SchedulerKind::kSpp);
  obs::MetricsRegistry registry;
  service::SessionConfig cfg;
  cfg.analysis.observer.metrics = &registry;
  service::AdmissionSession session(sys, cfg);
  std::ostringstream out;
  service::StreamOptions options;
  options.parallel_reads = 2;
  service::RequestScheduler scheduler(session, out, options);
  for (int i = 0; i < 3; ++i) scheduler.submit_line("{\"op\": \"query\"}");
  scheduler.finish();

  const obs::MetricsSnapshot snap = registry.snapshot();
  ASSERT_TRUE(snap.gauges.count("service.queue_depth_max"));
  EXPECT_GE(snap.gauges.at("service.queue_depth_max"), 1.0);
  EXPECT_EQ(snap.gauges.count("service.queue_depth"), 0u);
  // Both exports render the renamed gauge verbatim.
  const json::Value payload = service::stats_payload(snap);
  ASSERT_NE(payload.find("gauges"), nullptr);
  EXPECT_NE(payload.find("gauges")->find("service.queue_depth_max"), nullptr);
  const std::string prom = service::to_prometheus_text(snap);
  EXPECT_NE(prom.find("rta_service_queue_depth_max"), std::string::npos);
  EXPECT_EQ(prom.find("rta_service_queue_depth "), std::string::npos);
}

/// Regression: destroying a PromFlusher must leave a complete exposition at
/// the target path even when the flush interval never elapsed -- the final
/// write belongs to stop_and_flush()/the destructor, not the timer.
TEST(ServiceObs, PromFlusherWritesFinalSnapshotOnDestruction) {
  namespace fs = std::filesystem;
  const fs::path path = fs::path("obs_prom_final_test.prom");
  std::error_code ec;
  fs::remove(path, ec);
  obs::MetricsRegistry registry;
  registry.counter("final.count").add(42);
  {
    // An interval far beyond the test's lifetime: the background thread
    // never fires, so any bytes at `path` came from the final flush.
    service::PromFlusher flusher(registry, path.string(),
                                 /*interval_ms=*/60 * 60 * 1000.0);
    EXPECT_FALSE(fs::exists(path));
  }
  ASSERT_TRUE(fs::exists(path));
  std::ifstream in(path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("rta_final_count 42"), std::string::npos);
  EXPECT_NE(text.find("rta_scrape_time_seconds"), std::string::npos);
  fs::remove(path, ec);
}

/// Regression: when the atomic rename fails (here: the target path is a
/// directory), the staged `.tmp` file must be cleaned up, and the failure
/// must surface through stop_and_flush().
TEST(ServiceObs, PromFlusherCleansUpTmpWhenRenameFails) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path("obs_prom_rename_fail.prom");
  std::error_code ec;
  fs::remove_all(dir, ec);
  ASSERT_TRUE(fs::create_directory(dir));
  const fs::path tmp = fs::path(dir.string() + ".tmp");

  obs::MetricsRegistry registry;
  registry.counter("doomed.count").inc();
  bool clean = true;
  {
    service::PromFlusher flusher(registry, dir.string(),
                                 /*interval_ms=*/60 * 60 * 1000.0);
    clean = flusher.stop_and_flush();
  }
  EXPECT_FALSE(clean);            // the failed write is reported...
  EXPECT_FALSE(fs::exists(tmp));  // ...and the staging file is gone
  EXPECT_TRUE(fs::is_directory(dir));
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace rta
