// Unit tests for PwlCurve: construction, evaluation, left limits,
// pseudo-inverse (Def. 5), and structural invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "curve/pwl_curve.hpp"

namespace rta {
namespace {

TEST(PwlCurve, DefaultIsZeroAtOrigin) {
  PwlCurve c;
  EXPECT_DOUBLE_EQ(c.eval(0.0), 0.0);
  EXPECT_TRUE(c.check_invariants());
}

TEST(PwlCurve, ConstantAndZeroFactories) {
  const PwlCurve z = PwlCurve::zero(10.0);
  const PwlCurve c = PwlCurve::constant(10.0, 3.5);
  EXPECT_DOUBLE_EQ(z.eval(5.0), 0.0);
  EXPECT_DOUBLE_EQ(c.eval(0.0), 3.5);
  EXPECT_DOUBLE_EQ(c.eval(10.0), 3.5);
  EXPECT_TRUE(c.is_nondecreasing());
  EXPECT_TRUE(c.is_continuous());
}

TEST(PwlCurve, IdentityEvaluatesToT) {
  const PwlCurve id = PwlCurve::identity(8.0);
  for (double t : {0.0, 0.5, 3.3, 8.0}) {
    EXPECT_DOUBLE_EQ(id.eval(t), t);
    EXPECT_DOUBLE_EQ(id.eval_left(t), t);
  }
}

TEST(PwlCurve, LineWithSlope) {
  const PwlCurve l = PwlCurve::line(4.0, 2.5);
  EXPECT_DOUBLE_EQ(l.eval(2.0), 5.0);
  EXPECT_DOUBLE_EQ(l.end_value(), 10.0);
}

TEST(PwlCurve, StepCurveCountsArrivals) {
  const PwlCurve f = PwlCurve::step(10.0, {1.0, 2.5, 2.5, 7.0});
  EXPECT_DOUBLE_EQ(f.eval(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.eval(0.999), 0.0);
  EXPECT_DOUBLE_EQ(f.eval(1.0), 1.0);   // right-continuous at the jump
  EXPECT_DOUBLE_EQ(f.eval_left(1.0), 0.0);
  EXPECT_DOUBLE_EQ(f.eval(2.5), 3.0);   // double jump merges
  EXPECT_DOUBLE_EQ(f.eval_left(2.5), 1.0);
  EXPECT_DOUBLE_EQ(f.eval(6.9), 3.0);
  EXPECT_DOUBLE_EQ(f.eval(7.0), 4.0);
  EXPECT_DOUBLE_EQ(f.eval(10.0), 4.0);
  EXPECT_TRUE(f.is_nondecreasing());
  EXPECT_FALSE(f.is_continuous());
}

TEST(PwlCurve, StepWithArrivalAtZero) {
  const PwlCurve f = PwlCurve::step(5.0, {0.0, 0.0, 1.0});
  EXPECT_DOUBLE_EQ(f.eval(0.0), 2.0);
  EXPECT_DOUBLE_EQ(f.eval_left(0.0), 2.0);  // convention: f(0^-) = f(0)
  EXPECT_DOUBLE_EQ(f.eval(1.0), 3.0);
}

TEST(PwlCurve, StepIgnoresJumpsBeyondHorizon) {
  const PwlCurve f = PwlCurve::step(5.0, {1.0, 9.0});
  EXPECT_DOUBLE_EQ(f.end_value(), 1.0);
}

TEST(PwlCurve, StepHeightScales) {
  const PwlCurve f = PwlCurve::step(5.0, {1.0, 2.0}, 2.5);
  EXPECT_DOUBLE_EQ(f.eval(1.5), 2.5);
  EXPECT_DOUBLE_EQ(f.eval(2.0), 5.0);
}

TEST(PwlCurve, EvalInterpolatesSegments) {
  // Piecewise: 0 on [0,1], slope 2 on [1,3], flat after.
  const PwlCurve c({{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}, {3.0, 4.0, 4.0},
                    {10.0, 4.0, 4.0}});
  EXPECT_DOUBLE_EQ(c.eval(0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.eval(2.0), 2.0);
  EXPECT_DOUBLE_EQ(c.eval(3.0), 4.0);
  EXPECT_DOUBLE_EQ(c.eval(9.0), 4.0);
}

TEST(PwlCurve, EvalClampsOutsideHorizon) {
  const PwlCurve c = PwlCurve::identity(5.0);
  EXPECT_DOUBLE_EQ(c.eval(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(c.eval(100.0), 5.0);
}

TEST(PwlCurve, EvalSnapsNearKnots) {
  const PwlCurve f = PwlCurve::step(10.0, {2.0});
  EXPECT_DOUBLE_EQ(f.eval(2.0 - 1e-13), 1.0);  // snaps to the knot
  EXPECT_DOUBLE_EQ(f.eval(2.0 + 1e-13), 1.0);
}

TEST(PwlCurve, PseudoInverseOfStepGivesArrivalTimes) {
  // Def. 5 / Eq. 3: f^{-1}(m) = t_m.
  const PwlCurve f = PwlCurve::step(10.0, {1.0, 2.5, 2.5, 7.0});
  EXPECT_DOUBLE_EQ(f.pseudo_inverse(1.0), 1.0);
  EXPECT_DOUBLE_EQ(f.pseudo_inverse(2.0), 2.5);
  EXPECT_DOUBLE_EQ(f.pseudo_inverse(3.0), 2.5);
  EXPECT_DOUBLE_EQ(f.pseudo_inverse(4.0), 7.0);
  EXPECT_TRUE(std::isinf(f.pseudo_inverse(5.0)));
}

TEST(PwlCurve, PseudoInverseOnContinuousCurve) {
  const PwlCurve id = PwlCurve::identity(10.0);
  EXPECT_DOUBLE_EQ(id.pseudo_inverse(3.3), 3.3);
  EXPECT_DOUBLE_EQ(id.pseudo_inverse(0.0), 0.0);
  EXPECT_DOUBLE_EQ(id.pseudo_inverse(-1.0), 0.0);
}

TEST(PwlCurve, PseudoInverseFlatSegmentReturnsFirstReach) {
  // Rises to 2 at t=2, flat on [2,5], rises again.
  const PwlCurve c({{0.0, 0.0, 0.0}, {2.0, 2.0, 2.0}, {5.0, 2.0, 2.0},
                    {8.0, 5.0, 5.0}});
  EXPECT_DOUBLE_EQ(c.pseudo_inverse(2.0), 2.0);
  EXPECT_NEAR(c.pseudo_inverse(2.0 + 1e-3), 5.0 + 1e-3, 1e-6);
}

TEST(PwlCurve, PseudoInverseDefinitionFiveEdgeCases) {
  // Def. 5: f^{-1}(y) = min{s : f(s) >= y}. Oracle derived by hand from the
  // cumulative arrival count N(t) of releases {2, 2, 6}.
  const PwlCurve f = PwlCurve::step(10.0, {2.0, 2.0, 6.0});
  // y <= f(0): the minimum is time zero, also for y = 0 and negative y.
  EXPECT_DOUBLE_EQ(f.pseudo_inverse(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.pseudo_inverse(-3.0), 0.0);
  // Exact-breakpoint y: the first instant reaching each count.
  EXPECT_DOUBLE_EQ(f.pseudo_inverse(1.0), 2.0);
  EXPECT_DOUBLE_EQ(f.pseudo_inverse(2.0), 2.0);  // double release at t = 2
  EXPECT_DOUBLE_EQ(f.pseudo_inverse(3.0), 6.0);
  // y above the final value: no time within the horizon reaches it.
  EXPECT_TRUE(std::isinf(f.pseudo_inverse(3.0 + 1e-6)));
  EXPECT_TRUE(std::isinf(f.pseudo_inverse(100.0)));
}

TEST(PwlCurve, PseudoInverseEpsilonBandAboveFinalValue) {
  // y within the comparison tolerance of the final value still counts as
  // reached -- at the final knot, never by reading past the last segment.
  const PwlCurve c = PwlCurve::identity(4.0);
  EXPECT_DOUBLE_EQ(c.pseudo_inverse(4.0), 4.0);
  EXPECT_DOUBLE_EQ(c.pseudo_inverse(4.0 + 1e-8), 4.0);
  // Exactly at the tolerance boundary the comparisons may round either way;
  // both outcomes are Def. 5-consistent, and neither may crash or read out
  // of bounds.
  const Time at_eps = c.pseudo_inverse(4.0 + 1e-7);
  EXPECT_TRUE(at_eps == 4.0 || std::isinf(at_eps)) << at_eps;
  EXPECT_TRUE(std::isinf(c.pseudo_inverse(4.0 + 2e-7)));
}

TEST(PwlCurve, PseudoInverseNearFinalValueNeverMisbehaves) {
  // Sweep the epsilon band around the final value on a large-magnitude
  // curve, where the boundary comparisons are most rounding-sensitive.
  const PwlCurve c = PwlCurve::step(1e9, {1.0, 2.0, 1e9 - 1.0});
  const double final_value = 3.0;
  for (int i = -4; i <= 4; ++i) {
    const double y = final_value + static_cast<double>(i) * 5e-8;
    const Time t = c.pseudo_inverse(y);
    EXPECT_TRUE((t >= 0.0 && t <= 1e9) || std::isinf(t)) << "y=" << y;
  }
}

TEST(PwlCurve, NormalizationMergesDuplicateKnots) {
  const PwlCurve c({{0.0, 0.0, 0.0}, {1.0, 1.0, 2.0}, {1.0, 2.0, 3.0},
                    {4.0, 3.0, 3.0}});
  EXPECT_DOUBLE_EQ(c.eval(1.0), 3.0);       // jumps compose
  EXPECT_DOUBLE_EQ(c.eval_left(1.0), 1.0);
  EXPECT_TRUE(c.check_invariants());
}

TEST(PwlCurve, NormalizationDropsCollinearKnots) {
  const PwlCurve c({{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}, {2.0, 2.0, 2.0},
                    {4.0, 4.0, 4.0}});
  EXPECT_EQ(c.knot_count(), 2u);  // identity needs only its endpoints
  EXPECT_DOUBLE_EQ(c.eval(3.0), 3.0);
}

TEST(PwlCurve, ConstructorAnchorsAtZero) {
  const PwlCurve c({{2.0, 1.0, 1.0}, {5.0, 4.0, 4.0}});
  EXPECT_DOUBLE_EQ(c.eval(0.0), 1.0);  // extended flat to the left
  EXPECT_DOUBLE_EQ(c.eval(2.0), 1.0);
  EXPECT_TRUE(c.check_invariants());
}

TEST(PwlCurve, MaxAbsDifferenceSeesJumpMismatch) {
  const PwlCurve a = PwlCurve::step(10.0, {5.0});
  const PwlCurve b = PwlCurve::zero(10.0);
  EXPECT_DOUBLE_EQ(a.max_abs_difference(b), 1.0);
  EXPECT_FALSE(a.approx_equal(b));
  EXPECT_TRUE(a.approx_equal(a));
}

TEST(PwlCurve, IsNondecreasingDetectsDips) {
  const PwlCurve dip({{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}, {2.0, 0.5, 0.5},
                      {3.0, 2.0, 2.0}});
  EXPECT_FALSE(dip.is_nondecreasing());
}

}  // namespace
}  // namespace rta
