// Tests for the dependency graph and topological ordering used by the
// analyzers (analysis/order.hpp).
#include <gtest/gtest.h>

#include <map>

#include "analysis/order.hpp"
#include "model/priority.hpp"
#include "workload/jobshop.hpp"

namespace rta {
namespace {

Job make_job(const std::string& name, std::vector<Subjob> chain) {
  Job j;
  j.name = name;
  j.deadline = 10.0;
  j.chain = std::move(chain);
  j.arrivals = ArrivalSequence(std::vector<Time>{0.0});
  return j;
}

TEST(Order, ChainEdgesRespectHops) {
  System sys(2, SchedulerKind::kSpp);
  sys.add_job(make_job("A", {{0, 1.0, 1}, {1, 1.0, 1}}));
  const auto order = topological_order(sys);
  ASSERT_TRUE(order.has_value());
  std::map<std::pair<int, int>, std::size_t> pos;
  for (std::size_t i = 0; i < order->size(); ++i) {
    pos[{(*order)[i].job, (*order)[i].hop}] = i;
  }
  EXPECT_LT((pos[{0, 0}]), (pos[{0, 1}]));
}

TEST(Order, PriorityEdgesComeFirst) {
  System sys(1, SchedulerKind::kSpp);
  sys.add_job(make_job("Low", {{0, 1.0, 2}}));
  sys.add_job(make_job("High", {{0, 1.0, 1}}));
  const auto order = topological_order(sys);
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), 2u);
  EXPECT_EQ((*order)[0], (SubjobRef{1, 0}));  // High before Low
}

TEST(Order, FcfsCouplesViaPredecessors) {
  // Both jobs' second hops share a FCFS processor; their first hops must
  // both precede either second hop.
  System sys(3, SchedulerKind::kSpp);
  sys.set_scheduler(2, SchedulerKind::kFcfs);
  sys.add_job(make_job("A", {{0, 1.0, 1}, {2, 1.0, 0}}));
  sys.add_job(make_job("B", {{1, 1.0, 1}, {2, 1.0, 0}}));
  const auto order = topological_order(sys);
  ASSERT_TRUE(order.has_value());
  std::map<std::pair<int, int>, std::size_t> pos;
  for (std::size_t i = 0; i < order->size(); ++i) {
    pos[{(*order)[i].job, (*order)[i].hop}] = i;
  }
  EXPECT_LT((pos[{0, 0}]), (pos[{0, 1}]));
  EXPECT_LT((pos[{0, 0}]), (pos[{1, 1}]));  // cross-coupling via FCFS
  EXPECT_LT((pos[{1, 0}]), (pos[{0, 1}]));
  EXPECT_LT((pos[{1, 0}]), (pos[{1, 1}]));
}

TEST(Order, CycleReturnsNullopt) {
  System sys(2, SchedulerKind::kSpp);
  sys.add_job(make_job("Tk", {{0, 1.0, 2}, {1, 1.0, 1}}));
  sys.add_job(make_job("Tn", {{1, 1.0, 2}, {0, 1.0, 1}}));
  EXPECT_FALSE(topological_order(sys).has_value());
}

TEST(Order, MatchesSystemCycleDetector) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    JobShopConfig cfg;
    cfg.stages = 3;
    cfg.processors_per_stage = 2;
    cfg.jobs = 5;
    Rng rng(seed);
    System sys = generate_jobshop(cfg, rng);
    assign_proportional_deadline_monotonic(sys);
    EXPECT_EQ(topological_order(sys).has_value(),
              sys.dependency_graph_is_acyclic());
  }
}

TEST(Order, EveryDependencyPrecedes) {
  // Property: for a random shop, walk the order and verify all declared
  // graph edges point forward.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    JobShopConfig cfg;
    cfg.stages = 4;
    cfg.processors_per_stage = 2;
    cfg.jobs = 6;
    cfg.scheduler = (seed % 2) ? SchedulerKind::kSpnp : SchedulerKind::kFcfs;
    Rng rng(seed);
    System sys = generate_jobshop(cfg, rng);
    assign_proportional_deadline_monotonic(sys);
    const DependencyGraph g = build_dependency_graph(sys);
    const auto order = topological_order(sys);
    ASSERT_TRUE(order.has_value());
    std::vector<std::size_t> pos(g.node_count());
    for (std::size_t i = 0; i < order->size(); ++i) {
      pos[g.node((*order)[i])] = i;
    }
    for (int u = 0; u < g.node_count(); ++u) {
      for (int v : g.succ[u]) {
        EXPECT_LT(pos[u], pos[v]) << "seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace rta
