// Unit tests for the service transform -- the operator behind Theorems 3,
// 5-9 -- including the left-limit semantics pinned down in DESIGN.md.
#include <gtest/gtest.h>

#include "curve/algebra.hpp"
#include "curve/transforms.hpp"

namespace rta {
namespace {

TEST(ServiceTransform, SingleArrivalAtZero) {
  // One instance (tau = 1) released at t = 0, full availability A(t) = t.
  // The left-limit semantics must give S(t) = min(t, 1); the literal
  // right-continuous reading would give the absurd S(t) = 1 for all t.
  const PwlCurve avail = PwlCurve::identity(10.0);
  const PwlCurve c = curve_scale(PwlCurve::step(10.0, {0.0}), 1.0);
  const PwlCurve s = service_transform(avail, c);
  EXPECT_DOUBLE_EQ(s.eval(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.eval(0.5), 0.5);
  EXPECT_DOUBLE_EQ(s.eval(1.0), 1.0);
  EXPECT_DOUBLE_EQ(s.eval(5.0), 1.0);
  EXPECT_TRUE(s.is_nondecreasing());
}

TEST(ServiceTransform, ArrivalMidway) {
  const PwlCurve avail = PwlCurve::identity(10.0);
  const PwlCurve c = curve_scale(PwlCurve::step(10.0, {3.0}), 2.0);
  const PwlCurve s = service_transform(avail, c);
  EXPECT_DOUBLE_EQ(s.eval(3.0), 0.0);
  EXPECT_DOUBLE_EQ(s.eval(4.0), 1.0);
  EXPECT_DOUBLE_EQ(s.eval(5.0), 2.0);
  EXPECT_DOUBLE_EQ(s.eval(9.0), 2.0);
}

TEST(ServiceTransform, BacklogAccumulates) {
  // Two instances of tau = 2 at t = 0 and t = 1: the server works
  // continuously until t = 4.
  const PwlCurve avail = PwlCurve::identity(10.0);
  const PwlCurve c = curve_scale(PwlCurve::step(10.0, {0.0, 1.0}), 2.0);
  const PwlCurve s = service_transform(avail, c);
  EXPECT_DOUBLE_EQ(s.eval(2.0), 2.0);
  EXPECT_DOUBLE_EQ(s.eval(3.0), 3.0);
  EXPECT_DOUBLE_EQ(s.eval(4.0), 4.0);
  EXPECT_DOUBLE_EQ(s.eval(6.0), 4.0);
}

TEST(ServiceTransform, IdleGapBetweenArrivals) {
  // tau = 1 at t = 0 and t = 5: idle on [1, 5].
  const PwlCurve avail = PwlCurve::identity(10.0);
  const PwlCurve c = PwlCurve::step(10.0, {0.0, 5.0});
  const PwlCurve s = service_transform(avail, c);
  EXPECT_DOUBLE_EQ(s.eval(1.0), 1.0);
  EXPECT_DOUBLE_EQ(s.eval(4.0), 1.0);
  EXPECT_DOUBLE_EQ(s.eval(5.5), 1.5);
  EXPECT_DOUBLE_EQ(s.eval(6.0), 2.0);
}

TEST(ServiceTransform, ReducedAvailability) {
  // Higher-priority work occupies [0, 2]: A(t) = max(0, t - 2).
  const PwlCurve avail({{0.0, 0.0, 0.0}, {2.0, 0.0, 0.0}, {10.0, 8.0, 8.0}});
  const PwlCurve c = PwlCurve::step(10.0, {0.0});
  const PwlCurve s = service_transform(avail, c);
  EXPECT_DOUBLE_EQ(s.eval(2.0), 0.0);
  EXPECT_DOUBLE_EQ(s.eval(2.5), 0.5);
  EXPECT_DOUBLE_EQ(s.eval(3.0), 1.0);
  EXPECT_DOUBLE_EQ(s.eval(9.0), 1.0);
}

TEST(ServiceTransform, LagModelsBlocking) {
  // SPNP-style: blocking b = 2 delays everything; availability already
  // carries the -b offset (Eq. 17 shape).
  const Time b = 2.0;
  const PwlCurve avail = tighten_lower_bound(curve_clamp_min(
      curve_add_constant(PwlCurve::identity(10.0), -b), 0.0));
  const PwlCurve c = PwlCurve::step(10.0, {0.0});
  const PwlCurve s = service_transform(avail, c, b);
  EXPECT_DOUBLE_EQ(s.eval(1.0), 0.0);
  EXPECT_DOUBLE_EQ(s.eval(2.0), 0.0);
  EXPECT_DOUBLE_EQ(s.eval(2.5), 0.5);
  EXPECT_DOUBLE_EQ(s.eval(3.0), 1.0);
  // Quirk of Theorem 5's window: for t > 3 the nearest admissible s is t-b,
  // which credits availability accrued during the blocking window beyond the
  // actual demand -- the raw operator yields B(t) - B(t-b) + c((t-b)^-) = 3
  // here, exceeding the single unit of demanded work. The analyzers
  // therefore cap S̲ by the demand curve (see bounds.cpp); the first-crossing
  // of the demand level is unaffected.
  EXPECT_DOUBLE_EQ(s.eval(8.0), 3.0);
  EXPECT_DOUBLE_EQ(curve_min(s, c).eval(8.0), 1.0);
}

TEST(ServiceTransform, ZeroWorkloadGivesZeroService) {
  const PwlCurve s = service_transform(PwlCurve::identity(10.0),
                                       PwlCurve::zero(10.0));
  EXPECT_TRUE(s.approx_equal(PwlCurve::zero(10.0)));
}

TEST(ServiceTransform, ServiceNeverExceedsDemandOrAvailability) {
  const PwlCurve avail({{0.0, 0.0, 0.0}, {1.0, 0.5, 0.5}, {10.0, 7.0, 7.0}});
  const PwlCurve c = curve_scale(PwlCurve::step(10.0, {0.5, 1.5, 6.0}), 1.2);
  const PwlCurve s = service_transform(avail, c);
  for (double t = 0.0; t <= 10.0; t += 0.1) {
    EXPECT_LE(s.eval(t), avail.eval(t) + 1e-9);
    EXPECT_LE(s.eval(t), c.eval(t) + 1e-9);
  }
  EXPECT_TRUE(s.is_nondecreasing());
}

TEST(AvailabilityMinus, SubtractsConsumedService) {
  // One consumed curve: min(t, 3).
  const PwlCurve consumed({{0.0, 0.0, 0.0}, {3.0, 3.0, 3.0}, {10.0, 3.0, 3.0}});
  const PwlCurve a = availability_minus(10.0, {consumed});
  EXPECT_DOUBLE_EQ(a.eval(2.0), 0.0);
  EXPECT_DOUBLE_EQ(a.eval(3.0), 0.0);
  EXPECT_DOUBLE_EQ(a.eval(7.0), 4.0);
  EXPECT_TRUE(availability_minus(10.0, {}).approx_equal(
      PwlCurve::identity(10.0)));
}

TEST(TightenLowerBound, MonotonizesFromBelow) {
  const PwlCurve dip({{0.0, 0.0, 0.0}, {2.0, 2.0, 2.0}, {3.0, 1.0, 1.0},
                      {10.0, 8.0, 8.0}});
  const PwlCurve t = tighten_lower_bound(dip);
  EXPECT_TRUE(t.is_nondecreasing());
  EXPECT_DOUBLE_EQ(t.eval(2.5), 2.0);
  EXPECT_DOUBLE_EQ(t.eval(9.0), dip.eval(9.0));
}

// Theorem 2 chained with the transform: the workload of one subjob on an
// otherwise idle processor departs exactly tau after each (backlog-free)
// arrival.
TEST(ServiceTransform, DeparturesViaTheorem2) {
  const double tau = 1.5;
  const PwlCurve arr = PwlCurve::step(20.0, {0.0, 5.0, 10.0});
  const PwlCurve s =
      service_transform(PwlCurve::identity(20.0), curve_scale(arr, tau));
  const PwlCurve dep = curve_floor_div(s, tau);
  EXPECT_DOUBLE_EQ(dep.pseudo_inverse(1.0), tau);
  EXPECT_DOUBLE_EQ(dep.pseudo_inverse(2.0), 5.0 + tau);
  EXPECT_DOUBLE_EQ(dep.pseudo_inverse(3.0), 10.0 + tau);
}

}  // namespace
}  // namespace rta
