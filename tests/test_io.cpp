// Tests for the text system format (io/system_text) and curve CSV export.
#include <gtest/gtest.h>

#include <sstream>

#include "io/curve_csv.hpp"
#include "io/system_text.hpp"
#include "io/trace_csv.hpp"
#include "model/priority.hpp"
#include "sim/simulator.hpp"
#include "workload/jobshop.hpp"

namespace rta {
namespace {

const char* kSample = R"(
# two-processor pipeline
processors 2
scheduler 1 FCFS

job control deadline 3.0
  hop 0 exec 0.4 prio 1
  hop 1 exec 1.0
  arrivals periodic period 4.0 window 20.0
end

job burst deadline 9
  hop 0 exec 0.3 prio 2
  hop 1 exec 0.2
  arrivals bursty x 0.25 window 20
end
)";

TEST(SystemText, ParsesSample) {
  const ParsedSystem r = parse_system_text(std::string(kSample));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.system.processor_count(), 2);
  EXPECT_EQ(r.system.job_count(), 2);
  EXPECT_EQ(r.system.scheduler(0), SchedulerKind::kSpp);
  EXPECT_EQ(r.system.scheduler(1), SchedulerKind::kFcfs);
  EXPECT_EQ(r.system.job(0).name, "control");
  EXPECT_DOUBLE_EQ(r.system.job(0).deadline, 3.0);
  ASSERT_EQ(r.system.job(0).chain.size(), 2u);
  EXPECT_EQ(r.system.job(0).chain[0].priority, 1);
  EXPECT_EQ(r.system.job(0).arrivals.count(), 6u);  // 0,4,8,12,16,20
  EXPECT_DOUBLE_EQ(r.system.job(1).arrivals.release(1), 0.0);
}

TEST(SystemText, ExplicitAndBurstArrivals) {
  const ParsedSystem r = parse_system_text(std::string(R"(
processors 1
job a deadline 5
  hop 0 exec 0.2 prio 1
  arrivals explicit 0 0.5 0.5 3.25
end
job b deadline 8
  hop 0 exec 0.1 prio 2
  arrivals burst count 3 gap 0.5 period 4 window 10
end
)"));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.system.job(0).arrivals.count(), 4u);
  EXPECT_DOUBLE_EQ(r.system.job(0).arrivals.release(4), 3.25);
  // burst: 0, 0.5, 1.0 then steady 5.0, 9.0
  EXPECT_EQ(r.system.job(1).arrivals.count(), 5u);
  EXPECT_DOUBLE_EQ(r.system.job(1).arrivals.release(4), 5.0);
}

TEST(SystemText, PeriodicOffset) {
  const ParsedSystem r = parse_system_text(std::string(R"(
processors 1
job a deadline 5
  hop 0 exec 0.2 prio 1
  arrivals periodic period 2 window 10 offset 1.5
end
)"));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.system.job(0).arrivals.release(1), 1.5);
}

struct BadCase {
  const char* name;
  const char* text;
  const char* expect_in_error;
};

class SystemTextErrors : public testing::TestWithParam<BadCase> {};

TEST_P(SystemTextErrors, ReportsLineAndReason) {
  const ParsedSystem r = parse_system_text(std::string(GetParam().text));
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find(GetParam().expect_in_error), std::string::npos)
      << "got: " << r.error;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SystemTextErrors,
    testing::Values(
        BadCase{"NoProcessors", "job a deadline 1\n hop 0 exec 1 prio 1\n "
                                "arrivals explicit 0\nend\n",
                "processors"},
        BadCase{"BadScheduler", "processors 1\nscheduler 0 LIFO\n",
                "unknown scheduler"},
        BadCase{"SchedulerRange", "processors 1\nscheduler 5 SPP\n",
                "out of range"},
        BadCase{"BadDeadline", "processors 1\njob a deadline -2\n",
                "bad deadline"},
        BadCase{"HopOutsideJob", "processors 1\nhop 0 exec 1\n", "outside"},
        BadCase{"NegativeExec",
                "processors 1\njob a deadline 1\n hop 0 exec -1\n", "> 0"},
        BadCase{"MissingArrivals",
                "processors 1\njob a deadline 1\n hop 0 exec 1 prio 1\nend\n",
                "no arrivals"},
        BadCase{"UnsortedExplicit",
                "processors 1\njob a deadline 1\n hop 0 exec 1 prio 1\n "
                "arrivals explicit 2 1\nend\n",
                "nondecreasing"},
        BadCase{"BadBurstyRate",
                "processors 1\njob a deadline 1\n hop 0 exec 1 prio 1\n "
                "arrivals bursty x 1.5 window 5\nend\n",
                "(0,1)"},
        BadCase{"UnterminatedJob",
                "processors 1\njob a deadline 1\n hop 0 exec 1 prio 1\n "
                "arrivals explicit 0\n",
                "unterminated"},
        BadCase{"UnknownDirective", "processors 1\nfrobnicate 3\n",
                "unknown directive"},
        BadCase{"DuplicatePriority",
                "processors 1\n"
                "job a deadline 1\n hop 0 exec 1 prio 1\n arrivals explicit "
                "0\nend\n"
                "job b deadline 1\n hop 0 exec 1 prio 1\n arrivals explicit "
                "0\nend\n",
                "duplicate priority"}),
    [](const testing::TestParamInfo<BadCase>& param_info) {
      return param_info.param.name;
    });

TEST(SystemText, ErrorsCarryLineNumbers) {
  const ParsedSystem r =
      parse_system_text(std::string("processors 1\nscheduler 0 LIFO\n"));
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 2"), std::string::npos) << r.error;
}

TEST(SystemText, RoundTripPreservesSemantics) {
  JobShopConfig cfg;
  cfg.stages = 3;
  cfg.processors_per_stage = 2;
  cfg.jobs = 4;
  cfg.scheduler = SchedulerKind::kSpnp;
  Rng rng(5);
  System original = generate_jobshop(cfg, rng);
  assign_proportional_deadline_monotonic(original);

  const ParsedSystem reparsed = parse_system_text(to_system_text(original));
  ASSERT_TRUE(reparsed.ok) << reparsed.error;
  ASSERT_EQ(reparsed.system.job_count(), original.job_count());
  ASSERT_EQ(reparsed.system.processor_count(), original.processor_count());
  for (int p = 0; p < original.processor_count(); ++p) {
    EXPECT_EQ(reparsed.system.scheduler(p), original.scheduler(p));
  }
  for (int k = 0; k < original.job_count(); ++k) {
    const Job& a = original.job(k);
    const Job& b = reparsed.system.job(k);
    EXPECT_EQ(a.name, b.name);
    EXPECT_DOUBLE_EQ(a.deadline, b.deadline);
    ASSERT_EQ(a.chain.size(), b.chain.size());
    for (std::size_t h = 0; h < a.chain.size(); ++h) {
      EXPECT_EQ(a.chain[h].processor, b.chain[h].processor);
      EXPECT_DOUBLE_EQ(a.chain[h].exec_time, b.chain[h].exec_time);
      EXPECT_EQ(a.chain[h].priority, b.chain[h].priority);
    }
    ASSERT_EQ(a.arrivals.count(), b.arrivals.count());
    for (std::size_t m = 1; m <= a.arrivals.count(); ++m) {
      EXPECT_DOUBLE_EQ(a.arrivals.release(m), b.arrivals.release(m));
    }
  }
}

TEST(SystemText, LoadFileReportsMissing) {
  const ParsedSystem r = load_system_file("/nonexistent/x.rts");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("cannot open"), std::string::npos);
}

TEST(CurveCsv, KnotExport) {
  const PwlCurve c = PwlCurve::step(4.0, {1.0, 3.0});
  std::ostringstream ss;
  write_curve_knots_csv(c, ss);
  EXPECT_EQ(ss.str(),
            "t,left,right\n0,0,0\n1,0,1\n3,1,2\n4,2,2\n");
}

TEST(TraceCsv, GanttAndInstanceTables) {
  System sys(1, SchedulerKind::kSpp);
  Job low;
  low.name = "Low";
  low.deadline = 10.0;
  low.chain = {{0, 4.0, 2}};
  low.arrivals = ArrivalSequence(std::vector<Time>{0.0});
  sys.add_job(std::move(low));
  Job high;
  high.name = "High";
  high.deadline = 10.0;
  high.chain = {{0, 1.0, 1}};
  high.arrivals = ArrivalSequence(std::vector<Time>{1.0});
  sys.add_job(std::move(high));
  const SimResult r = simulate(sys, 20.0);

  std::ostringstream gantt;
  write_gantt_csv(sys, r, gantt);
  // Low preempted at 1: segments [0,1], then High [1,2], then Low [2,5].
  EXPECT_EQ(gantt.str(),
            "processor,job,hop,begin,end\n"
            "P0,Low,0,0,1\n"
            "P0,High,0,1,2\n"
            "P0,Low,0,2,5\n");

  std::ostringstream inst;
  write_instances_csv(sys, r, inst);
  EXPECT_EQ(inst.str(),
            "job,instance,release,completion,response,met_deadline\n"
            "Low,1,0,5,5,yes\n"
            "High,1,1,2,1,yes\n");
}

TEST(TraceCsv, UnfinishedInstanceHasEmptyCompletion) {
  System sys(1, SchedulerKind::kSpp);
  Job j;
  j.name = "A";
  j.deadline = 10.0;
  j.chain = {{0, 5.0, 1}};
  j.arrivals = ArrivalSequence(std::vector<Time>{0.0, 1.0});
  sys.add_job(std::move(j));
  const SimResult r = simulate(sys, 6.0);
  std::ostringstream inst;
  write_instances_csv(sys, r, inst);
  EXPECT_NE(inst.str().find("A,2,1,,,no"), std::string::npos) << inst.str();
}

TEST(CurveCsv, SampledExportPreservesJumps) {
  const PwlCurve c = PwlCurve::step(4.0, {2.0});
  std::ostringstream ss;
  write_curve_samples_csv(c, ss, 4);
  const std::string out = ss.str();
  // Both sides of the jump at t = 2 appear.
  EXPECT_NE(out.find("2,0\n"), std::string::npos);
  EXPECT_NE(out.find("2,1\n"), std::string::npos);
}

}  // namespace
}  // namespace rta
