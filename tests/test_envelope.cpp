// Tests for arrival envelopes and the interval-domain analysis: envelope
// construction/admission, horizontal deviation, and the dominance chain
// envelope bound >= trace bound >= simulated response.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/spp_exact.hpp"
#include "envelope/envelope_analysis.hpp"
#include "model/priority.hpp"
#include "sim/simulator.hpp"
#include "workload/jobshop.hpp"

namespace rta {
namespace {

TEST(Envelope, LeakyBucketShape) {
  const ArrivalEnvelope e = ArrivalEnvelope::leaky_bucket(3.0, 0.5, 10.0);
  EXPECT_DOUBLE_EQ(e.burst(), 3.0);
  EXPECT_DOUBLE_EQ(e.eval(2.0), 4.0);
  EXPECT_DOUBLE_EQ(e.eval(10.0), 8.0);
  EXPECT_DOUBLE_EQ(e.eval(20.0), 13.0);  // tail extension
  EXPECT_DOUBLE_EQ(e.rate(), 0.5);
}

TEST(Envelope, PeriodicStaircase) {
  // T = 2, no jitter: alpha(0) = 1, jumps at 2, 4, 6...
  const ArrivalEnvelope e = ArrivalEnvelope::periodic(2.0, 10.0);
  EXPECT_DOUBLE_EQ(e.eval(0.0), 1.0);
  EXPECT_DOUBLE_EQ(e.eval(1.9), 1.0);
  EXPECT_DOUBLE_EQ(e.eval(2.0), 2.0);
  EXPECT_DOUBLE_EQ(e.eval(5.0), 3.0);
  EXPECT_DOUBLE_EQ(e.rate(), 0.5);
}

TEST(Envelope, PeriodicWithJitter) {
  // T = 4, J = 3: alpha(0) = ceil(3/4) = 1; jump to 2 at 4-3 = 1, to 3 at 5.
  const ArrivalEnvelope e = ArrivalEnvelope::periodic(4.0, 20.0, 3.0);
  EXPECT_DOUBLE_EQ(e.eval(0.0), 1.0);
  EXPECT_DOUBLE_EQ(e.eval(1.0), 2.0);
  EXPECT_DOUBLE_EQ(e.eval(4.9), 2.0);
  EXPECT_DOUBLE_EQ(e.eval(5.0), 3.0);
  // Jitter beyond a period allows a batch of 2 at delta = 0.
  const ArrivalEnvelope e2 = ArrivalEnvelope::periodic(4.0, 20.0, 5.0);
  EXPECT_DOUBLE_EQ(e2.eval(0.0), 2.0);
}

TEST(Envelope, FromTraceIsTightOnPeriodicTrace) {
  const ArrivalSequence trace = ArrivalSequence::periodic(2.0, 20.0);
  const ArrivalEnvelope e = ArrivalEnvelope::from_trace(trace, 20.0);
  EXPECT_DOUBLE_EQ(e.eval(0.0), 1.0);
  EXPECT_DOUBLE_EQ(e.eval(1.9), 1.0);
  EXPECT_DOUBLE_EQ(e.eval(2.0), 2.0);
  EXPECT_DOUBLE_EQ(e.eval(6.0), 4.0);
  EXPECT_TRUE(e.admits(trace));
}

TEST(Envelope, FromTraceAdmitsItsTrace) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const ArrivalSequence trace =
        ArrivalSequence::jittered_periodic(3.0, 4.0, 40.0, rng);
    const ArrivalEnvelope e = ArrivalEnvelope::from_trace(trace, 40.0);
    EXPECT_TRUE(e.admits(trace)) << "seed " << seed;
  }
}

TEST(Envelope, FromTraceOfBurstyEq27) {
  const ArrivalSequence trace = ArrivalSequence::bursty_eq27(0.4, 40.0);
  const ArrivalEnvelope e = ArrivalEnvelope::from_trace(trace, 40.0);
  EXPECT_TRUE(e.admits(trace));
  // The burst at the head makes the envelope strictly denser than the
  // asymptotic period 1/x = 2.5 would suggest.
  EXPECT_GT(e.eval(5.0), 5.0 / 2.5);
}

TEST(Envelope, AdmitsRejectsDenserTrace) {
  const ArrivalEnvelope e = ArrivalEnvelope::periodic(2.0, 20.0);
  EXPECT_TRUE(e.admits(ArrivalSequence::periodic(2.0, 18.0)));
  EXPECT_TRUE(e.admits(ArrivalSequence::periodic(3.0, 18.0)));   // sparser ok
  EXPECT_FALSE(e.admits(ArrivalSequence::periodic(1.0, 18.0)));  // denser no
}

TEST(Envelope, DominatedByOrdersEnvelopes) {
  const ArrivalEnvelope tight = ArrivalEnvelope::periodic(2.0, 20.0);
  const ArrivalEnvelope loose = ArrivalEnvelope::leaky_bucket(1.0, 0.5, 20.0);
  EXPECT_TRUE(tight.dominated_by(loose));
  EXPECT_FALSE(loose.dominated_by(tight));
  EXPECT_TRUE(tight.dominated_by(tight));
}

TEST(Envelope, WithJitterWidens) {
  const ArrivalEnvelope e = ArrivalEnvelope::periodic(4.0, 40.0);
  const ArrivalEnvelope j = e.with_jitter(3.0);
  EXPECT_TRUE(e.dominated_by(j));
  EXPECT_DOUBLE_EQ(j.eval(1.0), e.eval(4.0));
  EXPECT_DOUBLE_EQ(j.eval(0.0), e.eval(3.0));
}

TEST(HorizontalDeviation, SingleBucketAgainstFullService) {
  // Demand: 2 units at once, then rate 0.25; service: rate 1.
  // Worst delay: at D = 0, demand 2 served by t = 2 -> deviation 2.
  const PwlCurve alpha({{0.0, 2.0, 2.0}, {20.0, 7.0, 7.0}});
  const PwlCurve beta = PwlCurve::identity(40.0);
  EXPECT_NEAR(horizontal_deviation(alpha, beta, 100.0), 2.0, 1e-9);
}

TEST(HorizontalDeviation, UnstableIsInfinite) {
  const PwlCurve alpha({{0.0, 1.0, 1.0}, {20.0, 41.0, 41.0}});  // rate 2
  const PwlCurve beta = PwlCurve::identity(40.0);               // rate 1
  EXPECT_TRUE(std::isinf(horizontal_deviation(alpha, beta, 100.0)));
}

TEST(EnvelopeAnalysis, SingleJobMatchesHandComputation) {
  // One job, one hop, periodic T = 4, tau = 1, no interference: every
  // conforming trace finishes within tau of release -> bound 1.
  System sys(1, SchedulerKind::kSpp);
  Job j;
  j.name = "A";
  j.deadline = 4.0;
  j.chain = {{0, 1.0, 1}};
  j.arrivals = ArrivalSequence::periodic(4.0, 40.0);
  sys.add_job(std::move(j));
  const EnvelopeResult r = EnvelopeAnalyzer().analyze(
      sys, {ArrivalEnvelope::periodic(4.0, 40.0)});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NEAR(r.jobs[0].wcrt, 1.0, 1e-9);
  EXPECT_TRUE(r.jobs[0].schedulable);
}

TEST(EnvelopeAnalysis, InterferenceAndBlocking) {
  // SPNP processor: hi (T=4, tau=1) suffers blocking by lo (tau=2): worst
  // finish = b + tau = 3 for the first activation.
  System sys(1, SchedulerKind::kSpnp);
  Job hi;
  hi.name = "hi";
  hi.deadline = 4.0;
  hi.chain = {{0, 1.0, 1}};
  hi.arrivals = ArrivalSequence::periodic(4.0, 40.0);
  sys.add_job(std::move(hi));
  Job lo;
  lo.name = "lo";
  lo.deadline = 20.0;
  lo.chain = {{0, 2.0, 2}};
  lo.arrivals = ArrivalSequence::periodic(10.0, 40.0);
  sys.add_job(std::move(lo));
  const EnvelopeResult r = EnvelopeAnalyzer().analyze(
      sys, {ArrivalEnvelope::periodic(4.0, 40.0),
            ArrivalEnvelope::periodic(10.0, 40.0)});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NEAR(r.jobs[0].wcrt, 3.0, 1e-9);  // b(2) + tau(1)
  // lo: blocked by nothing, interfered by hi: busy window 2 + 1 = 3.
  EXPECT_NEAR(r.jobs[1].wcrt, 3.0, 1e-9);
}

TEST(EnvelopeAnalysis, OverloadReportsInfinity) {
  System sys(1, SchedulerKind::kSpp);
  Job j;
  j.name = "A";
  j.deadline = 4.0;
  j.chain = {{0, 3.0, 1}};
  j.arrivals = ArrivalSequence::periodic(2.0, 40.0);  // util 1.5
  sys.add_job(std::move(j));
  const EnvelopeResult r = EnvelopeAnalyzer().analyze(
      sys, {ArrivalEnvelope::periodic(2.0, 40.0)});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(std::isinf(r.jobs[0].wcrt));
  EXPECT_FALSE(r.jobs[0].schedulable);
}

TEST(EnvelopeAnalysis, RejectsCyclicTopology) {
  System sys(2, SchedulerKind::kSpnp);
  Job a;
  a.name = "a";
  a.deadline = 10.0;
  a.chain = {{0, 1.0, 2}, {1, 1.0, 1}};
  a.arrivals = ArrivalSequence::periodic(10.0, 20.0);
  sys.add_job(std::move(a));
  Job b;
  b.name = "b";
  b.deadline = 10.0;
  b.chain = {{1, 1.0, 2}, {0, 1.0, 1}};
  b.arrivals = ArrivalSequence::periodic(10.0, 20.0);
  sys.add_job(std::move(b));
  const EnvelopeResult r = EnvelopeAnalyzer().analyze(
      sys, {ArrivalEnvelope::periodic(10.0, 20.0),
            ArrivalEnvelope::periodic(10.0, 20.0)});
  EXPECT_FALSE(r.ok);
}

// The dominance chain on random job shops: for every job,
//   envelope bound >= exact trace bound = simulated worst response.
TEST(EnvelopeAnalysis, DominatesTraceAnalysisOnRandomShops) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    JobShopConfig cfg;
    cfg.stages = 2;
    cfg.processors_per_stage = 2;
    cfg.jobs = 4;
    cfg.pattern = (seed % 2) ? ArrivalPattern::kPeriodic
                             : ArrivalPattern::kAperiodic;
    cfg.utilization = 0.4;
    cfg.window_periods = 5.0;
    cfg.min_rate = 0.2;
    Rng rng(seed);
    System sys = generate_jobshop(cfg, rng);
    assign_proportional_deadline_monotonic(sys);

    const EnvelopeResult env = EnvelopeAnalyzer().analyze_from_traces(sys);
    ASSERT_TRUE(env.ok) << env.error;
    const AnalysisResult exact = ExactSppAnalyzer().analyze(sys);
    ASSERT_TRUE(exact.ok) << exact.error;
    for (int k = 0; k < sys.job_count(); ++k) {
      if (std::isinf(env.jobs[k].wcrt)) continue;  // conservatively fine
      EXPECT_GE(env.jobs[k].wcrt, exact.jobs[k].wcrt - 1e-6)
          << "seed " << seed << " job " << k;
    }
  }
}

// Trace-independence: the envelope bound must also cover a DIFFERENT trace
// conforming to the same envelope (here: a worst-case synchronous phasing
// vs a staggered one).
TEST(EnvelopeAnalysis, CoversAllConformingTraces) {
  const Time window = 60.0;
  auto build = [&](Time offset_b) {
    System sys(1, SchedulerKind::kSpp);
    Job a;
    a.name = "a";
    a.deadline = 10.0;
    a.chain = {{0, 1.0, 1}};
    a.arrivals = ArrivalSequence::periodic(4.0, window);
    sys.add_job(std::move(a));
    Job b;
    b.name = "b";
    b.deadline = 12.0;
    b.chain = {{0, 2.0, 2}};
    b.arrivals = ArrivalSequence::periodic(6.0, window, offset_b);
    sys.add_job(std::move(b));
    return sys;
  };
  const std::vector<ArrivalEnvelope> envs = {
      ArrivalEnvelope::periodic(4.0, window),
      ArrivalEnvelope::periodic(6.0, window)};

  const EnvelopeResult bound = EnvelopeAnalyzer().analyze(build(0.0), envs);
  ASSERT_TRUE(bound.ok) << bound.error;
  for (Time offset : {0.0, 0.5, 1.7, 3.0}) {
    const System sys = build(offset);
    const SimResult sim = simulate(sys, window + 20.0);
    for (int k = 0; k < 2; ++k) {
      EXPECT_GE(bound.jobs[k].wcrt, sim.worst_response[k] - 1e-6)
          << "offset " << offset << " job " << k;
    }
  }
}

}  // namespace
}  // namespace rta
