// Versioned JSON round trips (io/system_json.hpp, io/json.hpp): systems and
// analysis results must survive save -> load bit-identically, and the JSON
// and text formats must agree on the systems they describe.
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "io/json.hpp"
#include "io/system_json.hpp"
#include "io/system_text.hpp"
#include "model/priority.hpp"
#include "util/rng.hpp"
#include "workload/jobshop.hpp"

namespace rta {
namespace {

System sample_system(std::uint64_t seed) {
  JobShopConfig cfg;
  cfg.stages = 2;
  cfg.processors_per_stage = 2;
  cfg.jobs = 4;
  cfg.utilization = 0.55;
  cfg.pattern = ArrivalPattern::kAperiodic;  // irrational-ish release times
  Rng rng(seed);
  System system = generate_jobshop(cfg, rng);
  system.set_scheduler(1, SchedulerKind::kSpnp);
  system.set_scheduler(3, SchedulerKind::kFcfs);
  assign_proportional_deadline_monotonic(system);
  return system;
}

void expect_same_system(const System& a, const System& b) {
  ASSERT_EQ(a.processor_count(), b.processor_count());
  for (int p = 0; p < a.processor_count(); ++p) {
    EXPECT_EQ(a.scheduler(p), b.scheduler(p)) << "processor " << p;
  }
  ASSERT_EQ(a.job_count(), b.job_count());
  for (int k = 0; k < a.job_count(); ++k) {
    const Job& ja = a.job(k);
    const Job& jb = b.job(k);
    EXPECT_EQ(ja.name, jb.name);
    EXPECT_EQ(ja.deadline, jb.deadline) << ja.name;  // bit-identical
    ASSERT_EQ(ja.chain.size(), jb.chain.size()) << ja.name;
    for (std::size_t h = 0; h < ja.chain.size(); ++h) {
      EXPECT_EQ(ja.chain[h].processor, jb.chain[h].processor);
      EXPECT_EQ(ja.chain[h].exec_time, jb.chain[h].exec_time);
      EXPECT_EQ(ja.chain[h].priority, jb.chain[h].priority);
    }
    ASSERT_EQ(ja.arrivals.count(), jb.arrivals.count()) << ja.name;
    for (std::size_t m = 1; m <= ja.arrivals.count(); ++m) {
      EXPECT_EQ(ja.arrivals.release(m), jb.arrivals.release(m))
          << ja.name << " release " << m;
    }
  }
}

TEST(SystemJson, RoundTripIsBitIdentical) {
  const System original = sample_system(21);
  const ParsedSystem reparsed = parse_system_json(to_system_json(original));
  ASSERT_TRUE(reparsed.ok) << reparsed.error;
  expect_same_system(original, reparsed.system);
  // Stable ids are carried (unlike the text format).
  for (int k = 0; k < original.job_count(); ++k) {
    EXPECT_EQ(original.job(k).id, reparsed.system.job(k).id);
  }
  // A second trip produces the same bytes: serialization is deterministic.
  EXPECT_EQ(to_system_json(original), to_system_json(reparsed.system));
}

TEST(SystemJson, AgreesWithTextFormat) {
  const System original = sample_system(22);
  const ParsedSystem from_text = parse_system_text(to_system_text(original));
  const ParsedSystem from_json = parse_system_json(to_system_json(original));
  ASSERT_TRUE(from_text.ok) << from_text.error;
  ASSERT_TRUE(from_json.ok) << from_json.error;
  expect_same_system(from_text.system, from_json.system);

  // Both loads analyze to bit-identical bounds.
  AnalysisConfig cfg;
  const AnalysisResult rt = BoundsAnalyzer(cfg).analyze(from_text.system);
  const AnalysisResult rj = BoundsAnalyzer(cfg).analyze(from_json.system);
  ASSERT_TRUE(rt.ok && rj.ok);
  ASSERT_EQ(rt.jobs.size(), rj.jobs.size());
  for (std::size_t k = 0; k < rt.jobs.size(); ++k) {
    EXPECT_EQ(rt.jobs[k].wcrt, rj.jobs[k].wcrt) << "job " << k;
  }
}

TEST(SystemJson, RejectsUnsupportedSchemaVersion) {
  std::string text = to_system_json(sample_system(23));
  const std::string from = "\"schema_version\": 1";
  const std::size_t at = text.find(from);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, from.size(), "\"schema_version\": 99");
  const ParsedSystem parsed = parse_system_json(text);
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("schema_version"), std::string::npos)
      << parsed.error;
  EXPECT_NE(parsed.error.find('1'), std::string::npos) << parsed.error;
}

TEST(SystemJson, RejectsMalformedInput) {
  EXPECT_FALSE(parse_system_json("not json").ok);
  EXPECT_FALSE(parse_system_json("{}").ok);
  EXPECT_FALSE(parse_system_json("[1, 2]").ok);
  // Structural validation runs on load, as for the text format.
  const std::string bad_proc = R"({
    "schema_version": 1,
    "processors": [{"scheduler": "SPP"}],
    "jobs": [{"name": "t", "deadline": 1,
              "chain": [{"processor": 7, "exec": 0.1, "priority": 1}],
              "arrivals": [0]}]
  })";
  const ParsedSystem parsed = parse_system_json(bad_proc);
  EXPECT_FALSE(parsed.ok);
}

TEST(SystemJson, JobParserReportsMissingPriorities) {
  const std::string no_prio = R"({"name": "t", "deadline": 2,
    "chain": [{"processor": 0, "exec": 0.5}], "arrivals": [0, 1]})";
  json::ParseResult parsed = json::parse(no_prio);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  Job job;
  std::string error;
  bool saw_priority = true;
  ASSERT_TRUE(parse_job_json(parsed.value, job, error, &saw_priority))
      << error;
  EXPECT_FALSE(saw_priority);
  EXPECT_EQ(job.name, "t");
  ASSERT_EQ(job.chain.size(), 1u);
  EXPECT_EQ(job.chain[0].exec_time, 0.5);
}

TEST(ResultJson, RoundTripPreservesBoundsAndInfinities) {
  const System system = sample_system(24);
  AnalysisConfig cfg;
  AnalysisResult result = BoundsAnalyzer(cfg).analyze(system);
  ASSERT_TRUE(result.ok);
  result.jobs[0].wcrt = kTimeInfinity;  // exercise the "inf" encoding
  result.jobs[0].schedulable = false;

  for (const bool compact : {false, true}) {
    const ParsedResult back =
        parse_result_json(to_result_json(result, compact));
    ASSERT_TRUE(back.ok) << back.error;
    ASSERT_EQ(back.result.ok, result.ok);
    EXPECT_EQ(back.result.horizon, result.horizon);
    ASSERT_EQ(back.result.jobs.size(), result.jobs.size());
    EXPECT_TRUE(std::isinf(back.result.jobs[0].wcrt));
    for (std::size_t k = 0; k < result.jobs.size(); ++k) {
      EXPECT_EQ(back.result.jobs[k].wcrt, result.jobs[k].wcrt) << k;
      EXPECT_EQ(back.result.jobs[k].schedulable, result.jobs[k].schedulable);
      ASSERT_EQ(back.result.jobs[k].hops.size(), result.jobs[k].hops.size());
      for (std::size_t h = 0; h < result.jobs[k].hops.size(); ++h) {
        EXPECT_EQ(back.result.jobs[k].hops[h].local_bound,
                  result.jobs[k].hops[h].local_bound);
      }
    }
  }
}

TEST(ResultJson, ErrorResultRoundTrips) {
  AnalysisResult result;
  result.ok = false;
  result.error = "subjob dependency graph has a cycle";
  const ParsedResult back = parse_result_json(to_result_json(result));
  ASSERT_TRUE(back.ok) << back.error;
  EXPECT_FALSE(back.result.ok);
  EXPECT_EQ(back.result.error, result.error);
}

TEST(Json, ValueParserBasics) {
  const json::ParseResult r =
      json::parse(R"({"a": [1, 2.5, "x\n", true, null], "b": {"c": -3e2}})");
  ASSERT_TRUE(r.ok) << r.error;
  const json::Value* a = r.value.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->as_array().size(), 5u);
  EXPECT_EQ(a->as_array()[0].as_number(), 1.0);
  EXPECT_EQ(a->as_array()[2].as_string(), "x\n");
  const json::Value* b = r.value.find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->find("c")->as_number(), -300.0);

  EXPECT_FALSE(json::parse("{\"a\": 1,}").ok);     // trailing comma
  EXPECT_FALSE(json::parse("{\"a\":1} x").ok);     // trailing garbage
  EXPECT_FALSE(json::parse("{\"a\":1,\"a\":2}").ok);  // duplicate key
}

TEST(Json, NumbersSurviveDumpParse) {
  const double values[] = {0.0,       1.0 / 3.0, 1e-300, 6.02e23,
                           -0.1,      3.141592653589793,
                           1.7976931348623157e308};
  for (const double v : values) {
    json::Value doc;
    doc.set("v", json::Value(v));
    const json::ParseResult back = json::parse(doc.dump());
    ASSERT_TRUE(back.ok) << back.error;
    EXPECT_EQ(back.value.find("v")->as_number(), v);
  }
}

// Strict JSON number grammar: parse_number must reject everything the
// grammar excludes instead of letting strtod swallow a prefix, and must be
// immune to the process locale's decimal separator.
TEST(Json, RejectsMalformedNumbers) {
  const char* bad[] = {
      "[12abc]",   // trailing garbage inside a token
      "[1.2.3]",   // second decimal point
      "[1e]",      // empty exponent
      "[1e+]",     // sign-only exponent
      "[+1]",      // leading plus
      "[01]",      // leading zero
      "[.5]",      // missing integer part
      "[1.]",      // missing fraction digits
      "[0x10]",    // hex
      "[--1]",     // double sign
      "[Infinity]", "[nan]",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(json::parse(text).ok) << text;
  }
}

TEST(Json, AcceptsFullNumberGrammar) {
  const struct {
    const char* text;
    double value;
  } good[] = {
      {"[0]", 0.0},       {"[-0]", -0.0},    {"[12]", 12.0},
      {"[1.5]", 1.5},     {"[1e3]", 1000.0}, {"[1E-3]", 0.001},
      {"[0.5e+2]", 50.0}, {"[1e308]", 1e308},
  };
  for (const auto& t : good) {
    const json::ParseResult r = json::parse(t.text);
    ASSERT_TRUE(r.ok) << t.text << ": " << r.error;
    EXPECT_EQ(r.value.as_array()[0].as_number(), t.value) << t.text;
  }
}

TEST(Json, OverflowingNumberIsAnErrorUnderflowIsZero) {
  // 1e999 would read back as +inf and break the dump->parse round trip;
  // the parser reports it instead of silently converting.
  const json::ParseResult over = json::parse("[1e999]");
  EXPECT_FALSE(over.ok);
  EXPECT_NE(over.error.find("out of range"), std::string::npos) << over.error;
  // Gradual underflow to zero is a faithful IEEE result, not an error.
  const json::ParseResult under = json::parse("[1e-999]");
  ASSERT_TRUE(under.ok) << under.error;
  EXPECT_EQ(under.value.as_array()[0].as_number(), 0.0);
}

}  // namespace
}  // namespace rta
