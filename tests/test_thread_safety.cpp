// Concurrency smoke test for the parallel analysis engine, written to be
// meaningful under ThreadSanitizer (configure with -DRTA_SANITIZE=thread):
// several client threads drive analyses concurrently -- each through its own
// analyzer and, in the second test, all through ONE shared analyzer whose
// internal ThreadPool and CurveCache are then exercised from every client at
// once. Any data race in the wavefront scheduler, the cache shards, or the
// pass-skip memo shows up here.
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "analysis/iterative.hpp"
#include "model/priority.hpp"
#include "util/rng.hpp"
#include "workload/jobshop.hpp"

namespace rta {
namespace {

constexpr int kClientThreads = 4;

System make_system(std::uint64_t seed) {
  JobShopConfig cfg;
  cfg.stages = 3;
  cfg.processors_per_stage = 2;
  cfg.jobs = 5;
  cfg.pattern = ArrivalPattern::kPeriodic;
  cfg.utilization = 0.7;
  cfg.window_periods = 4.0;
  cfg.scheduler = SchedulerKind::kSpp;
  Rng rng(seed);
  System system = generate_jobshop(cfg, rng);
  assign_proportional_deadline_monotonic(system);
  return system;
}

void expect_same_report(const AnalysisResult& a, const AnalysisResult& b) {
  ASSERT_EQ(a.ok, b.ok);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t k = 0; k < a.jobs.size(); ++k) {
    EXPECT_EQ(a.jobs[k].wcrt, b.jobs[k].wcrt) << "job " << k;
    EXPECT_EQ(a.jobs[k].schedulable, b.jobs[k].schedulable) << "job " << k;
  }
}

// Each client owns its analyzer; they only share the immutable System.
TEST(ThreadSafety, ConcurrentAnalyzersOnSharedSystem) {
  const System system = make_system(42);
  AnalysisConfig cfg;
  cfg.threads = 4;
  cfg.use_curve_cache = true;

  const AnalysisResult reference = IterativeBoundsAnalyzer(cfg).analyze(system);
  ASSERT_TRUE(reference.ok);

  std::vector<AnalysisResult> results(kClientThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      IterativeBoundsAnalyzer analyzer(cfg);
      results[static_cast<std::size_t>(t)] = analyzer.analyze(system);
    });
  }
  for (auto& c : clients) c.join();
  for (const AnalysisResult& r : results) expect_same_report(reference, r);
}

// All clients hammer ONE analyzer concurrently. analyze() is const and the
// engine keeps per-call state on the stack; the shared pieces (ThreadPool,
// CurveCache) are the synchronized ones. Clients use distinct systems so a
// cross-talk bug would corrupt results, not just race silently.
TEST(ThreadSafety, SharedAnalyzerServesConcurrentClients) {
  std::vector<System> systems;
  std::vector<AnalysisResult> references;
  AnalysisConfig serial;
  serial.threads = 1;
  serial.use_curve_cache = false;
  for (int t = 0; t < kClientThreads; ++t) {
    systems.push_back(make_system(1000 + static_cast<std::uint64_t>(t)));
    references.push_back(BoundsAnalyzer(serial).analyze(systems.back()));
    ASSERT_TRUE(references.back().ok);
  }

  AnalysisConfig cfg;
  cfg.threads = 4;
  cfg.use_curve_cache = true;
  const BoundsAnalyzer shared(cfg);

  std::vector<AnalysisResult> results(kClientThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      const std::size_t idx = static_cast<std::size_t>(t);
      for (int round = 0; round < 3; ++round) {
        results[idx] = shared.analyze(systems[idx]);
      }
    });
  }
  for (auto& c : clients) c.join();
  for (int t = 0; t < kClientThreads; ++t) {
    expect_same_report(references[static_cast<std::size_t>(t)],
                       results[static_cast<std::size_t>(t)]);
  }
}

// Same for the iterative engine, whose pass-skip memo is per-call state and
// must not leak between concurrent analyses.
TEST(ThreadSafety, SharedIterativeAnalyzerServesConcurrentClients) {
  std::vector<System> systems;
  std::vector<AnalysisResult> references;
  AnalysisConfig serial;
  serial.threads = 1;
  serial.use_curve_cache = false;
  for (int t = 0; t < kClientThreads; ++t) {
    systems.push_back(make_system(2000 + static_cast<std::uint64_t>(t)));
    references.push_back(IterativeBoundsAnalyzer(serial).analyze(systems.back()));
    ASSERT_TRUE(references.back().ok);
  }

  AnalysisConfig cfg;
  cfg.threads = 4;
  cfg.use_curve_cache = true;
  const IterativeBoundsAnalyzer shared(cfg);

  std::vector<AnalysisResult> results(kClientThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      const std::size_t idx = static_cast<std::size_t>(t);
      results[idx] = shared.analyze(systems[idx]);
    });
  }
  for (auto& c : clients) c.join();
  for (int t = 0; t < kClientThreads; ++t) {
    expect_same_report(references[static_cast<std::size_t>(t)],
                       results[static_cast<std::size_t>(t)]);
  }
}

}  // namespace
}  // namespace rta
