// The rta::Analyzer facade (analysis/analyzer.hpp): engine selection,
// name round trips, and bit-identity with directly constructed engines.
#include <string>

#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "analysis/bounds.hpp"
#include "analysis/iterative.hpp"
#include "analysis/spp_exact.hpp"
#include "model/priority.hpp"
#include "util/rng.hpp"
#include "workload/jobshop.hpp"

namespace rta {
namespace {

System shop(SchedulerKind scheduler, std::uint64_t seed) {
  JobShopConfig cfg;
  cfg.stages = 2;
  cfg.processors_per_stage = 1;
  cfg.jobs = 3;
  cfg.utilization = 0.5;
  cfg.scheduler = scheduler;
  Rng rng(seed);
  System system = generate_jobshop(cfg, rng);
  assign_proportional_deadline_monotonic(system);
  return system;
}

TEST(Analyzer, EngineKindNamesRoundTrip) {
  for (const EngineKind kind :
       {EngineKind::kAuto, EngineKind::kSppExact, EngineKind::kBounds,
        EngineKind::kIterative, EngineKind::kHolistic}) {
    const auto back = parse_engine_kind(engine_kind_name(kind));
    ASSERT_TRUE(back.has_value()) << engine_kind_name(kind);
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(parse_engine_kind("exact").has_value());
  EXPECT_FALSE(parse_engine_kind("").has_value());
}

TEST(Analyzer, AutoPicksStrongestApplicableEngine) {
  const Analyzer analyzer;
  EXPECT_EQ(analyzer.select_engine(shop(SchedulerKind::kSpp, 1)),
            EngineKind::kSppExact);
  EXPECT_EQ(analyzer.select_engine(shop(SchedulerKind::kSpnp, 2)),
            EngineKind::kBounds);
  EXPECT_EQ(analyzer.select_engine(shop(SchedulerKind::kFcfs, 3)),
            EngineKind::kBounds);

  // Force a dependency cycle: a job flowing stage 1 -> stage 0 that is
  // lowest-priority on processor 1 (existing hops -> its hop 0) but
  // highest-priority on processor 0 (its hop 1 -> existing hops), closing a
  // loop through the two chains.
  System cyclic = shop(SchedulerKind::kSpnp, 4);
  Job back;
  back.name = "backflow";
  back.deadline = 50.0;
  back.chain.push_back(Subjob{1, 0.05, 90});
  back.chain.push_back(Subjob{0, 0.05, -1});
  back.arrivals = ArrivalSequence::periodic(10.0, 40.0);
  cyclic.add_job(back);
  ASSERT_FALSE(cyclic.dependency_graph_is_acyclic());
  EXPECT_EQ(analyzer.select_engine(cyclic), EngineKind::kIterative);
}

TEST(Analyzer, MatchesDirectEnginesBitwise) {
  AnalysisConfig cfg;
  const Analyzer analyzer(cfg);

  const System spp = shop(SchedulerKind::kSpp, 5);
  std::string used;
  const AnalysisResult facade = analyzer.analyze(spp, EngineKind::kAuto, &used);
  const AnalysisResult direct = ExactSppAnalyzer(cfg).analyze(spp);
  EXPECT_EQ(used, ExactSppAnalyzer::name());
  ASSERT_TRUE(facade.ok && direct.ok);
  ASSERT_EQ(facade.jobs.size(), direct.jobs.size());
  for (std::size_t k = 0; k < facade.jobs.size(); ++k) {
    EXPECT_EQ(facade.jobs[k].wcrt, direct.jobs[k].wcrt) << k;
  }

  const System spnp = shop(SchedulerKind::kSpnp, 6);
  const AnalysisResult fb = analyzer.analyze(spnp, EngineKind::kBounds, &used);
  const AnalysisResult db = BoundsAnalyzer(cfg).analyze(spnp);
  EXPECT_EQ(used, BoundsAnalyzer::name());
  ASSERT_TRUE(fb.ok && db.ok);
  for (std::size_t k = 0; k < fb.jobs.size(); ++k) {
    EXPECT_EQ(fb.jobs[k].wcrt, db.jobs[k].wcrt) << k;
  }
}

TEST(Analyzer, MethodDispatchMatchesAnalyzeWith) {
  AnalysisConfig cfg;
  const Analyzer analyzer(cfg);
  for (const Method m : {Method::kSppExact, Method::kSpnpApp, Method::kFcfsApp,
                         Method::kSppApp}) {
    System system = shop(method_scheduler(m), 7);
    const AnalysisResult a = analyzer.analyze(system, m);
    const AnalysisResult b = analyze_with(m, system, cfg);
    ASSERT_EQ(a.ok, b.ok) << method_name(m);
    ASSERT_EQ(a.jobs.size(), b.jobs.size()) << method_name(m);
    for (std::size_t k = 0; k < a.jobs.size(); ++k) {
      EXPECT_EQ(a.jobs[k].wcrt, b.jobs[k].wcrt) << method_name(m) << " " << k;
    }
  }
}

TEST(Analyzer, ReusesEnginesAcrossCalls) {
  AnalysisConfig cfg;
  cfg.threads = 2;  // give the facade's bounds engine a pool worth reusing
  const Analyzer analyzer(cfg);
  const System a = shop(SchedulerKind::kSpnp, 8);
  const System b = shop(SchedulerKind::kFcfs, 9);
  const AnalysisResult ra = analyzer.analyze(a, EngineKind::kBounds);
  const AnalysisResult rb = analyzer.analyze(b, EngineKind::kBounds);
  EXPECT_TRUE(ra.ok);
  EXPECT_TRUE(rb.ok);
  // Fresh single-shot analyzers agree: reuse is invisible in the results.
  const AnalysisResult fa = BoundsAnalyzer(cfg).analyze(a);
  for (std::size_t k = 0; k < ra.jobs.size(); ++k) {
    EXPECT_EQ(ra.jobs[k].wcrt, fa.jobs[k].wcrt) << k;
  }
}

}  // namespace
}  // namespace rta
