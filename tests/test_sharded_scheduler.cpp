// Tests for the sharded multi-tenant front end (service/sharded_scheduler)
// and its TenantRegistry. The central contract mirrors the single-session
// scheduler's: for EVERY tenant in a multi-tenant run, the tenant's
// responses are byte-identical (modulo latency_us) to running just that
// tenant's lines through the sequential run_request_stream against its own
// session -- at shard widths 1, 2, and hardware, under arbitrary
// interleaving with other tenants and mid-stream pumps.
//
// Suites are named Service* so the CI thread-sanitizer job picks them up
// (.github/workflows/ci.yml filters on the Service prefix).
#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/json.hpp"
#include "model/priority.hpp"
#include "service/admission_session.hpp"
#include "service/request_runner.hpp"
#include "service/sharded_scheduler.hpp"
#include "service/tenant_registry.hpp"
#include "util/rng.hpp"
#include "workload/jobshop.hpp"

namespace rta {
namespace {

using service::AdmissionSession;
using service::RunnerStats;
using service::SessionConfig;
using service::ShardedOptions;
using service::ShardedScheduler;
using service::ShardedStats;
using service::TenantRegistry;

System make_base(std::uint64_t seed) {
  Rng rng(seed);
  JobShopConfig cfg;
  cfg.stages = 2;
  cfg.processors_per_stage = 2;
  cfg.jobs = 3;
  cfg.utilization = 0.4;
  cfg.window_periods = 4.0;
  cfg.deadline.period_multiple = 3.0;
  cfg.scheduler = SchedulerKind::kSpp;
  System system = generate_jobshop(cfg, rng);
  assign_proportional_deadline_monotonic(system);
  return system;
}

SessionConfig make_session_config(const System& base) {
  SessionConfig cfg;
  cfg.analysis.horizon = 4.0 * default_horizon(base, AnalysisConfig{});
  return cfg;
}

std::string strip_latency(const std::string& responses) {
  static const std::regex latency(",\"latency_us\":[^,}]*");
  return std::regex_replace(responses, latency, "");
}

/// One random request line for `tenant`: mostly reads (query / what_if),
/// some admits and (often-invalid) removals, salted with malformed shapes.
std::string random_line(Rng& rng, const std::string& tenant,
                        const System& base, int serial) {
  const std::string prefix = "{\"tenant\": \"" + tenant + "\", ";
  const int salt = rng.uniform_int(0, 19);
  if (salt == 0) return prefix + "\"op\": \"frobnicate\"}";
  if (salt == 1) return prefix + "\"op\": \"remove\"}";
  const double r = rng.uniform(0.0, 1.0);
  if (r < 0.45) return prefix + "\"op\": \"query\"}";
  std::ostringstream job;
  job << "\"job\": {\"name\": \"" << tenant << "_c" << serial
      << "\", \"deadline\": " << rng.uniform(8.0, 30.0)
      << ", \"chain\": [{\"processor\": "
      << rng.uniform_int(0, base.processor_count() - 1)
      << ", \"exec\": " << rng.uniform(0.02, 0.1)
      << "}], \"arrivals\": [0, 9, 18, 27, 36, 45, 54, 63]}";
  if (r < 0.75) return prefix + "\"op\": \"what_if\", " + job.str() + "}";
  if (r < 0.9) return prefix + "\"op\": \"admit\", " + job.str() + "}";
  return prefix + "\"op\": \"remove\", \"name\": \"" + tenant + "_c" +
         std::to_string(rng.uniform_int(0, serial + 4)) + "\"}";
}

/// Partition a multi-tenant response stream by each response's "tenant"
/// echo; responses without one land under "".
std::map<std::string, std::string> split_by_tenant(
    const std::string& responses) {
  std::map<std::string, std::string> per_tenant;
  std::istringstream lines(responses);
  std::string line;
  while (std::getline(lines, line)) {
    const json::ParseResult doc = json::parse(line);
    EXPECT_TRUE(doc.ok) << line;
    const json::Value* tenant = doc.value.find("tenant");
    per_tenant[tenant != nullptr ? tenant->as_string() : std::string()] +=
        line + "\n";
  }
  return per_tenant;
}

// ---------------------------------------------------------------------------
// TenantRegistry

TEST(ServiceTenantRegistry, AddFindAndDuplicateRejection) {
  const System base = make_base(3);
  const SessionConfig cfg = make_session_config(base);
  TenantRegistry registry;
  EXPECT_EQ(registry.count(), 0);
  EXPECT_EQ(registry.find("alpha"), -1);

  const int alpha =
      registry.add("alpha", std::make_unique<AdmissionSession>(base, cfg));
  const int beta =
      registry.add("beta", std::make_unique<AdmissionSession>(base, cfg));
  EXPECT_EQ(alpha, 0);
  EXPECT_EQ(beta, 1);
  EXPECT_EQ(registry.count(), 2);
  EXPECT_EQ(registry.find("alpha"), alpha);
  EXPECT_EQ(registry.find("beta"), beta);
  EXPECT_EQ(registry.name(alpha), "alpha");
  EXPECT_EQ(registry.name(beta), "beta");
  EXPECT_EQ(registry.find("gamma"), -1);
  EXPECT_EQ(registry.find(""), -1);

  // Duplicate registration is rejected and changes nothing.
  EXPECT_EQ(registry.add("alpha",
                         std::make_unique<AdmissionSession>(base, cfg)),
            -1);
  EXPECT_EQ(registry.count(), 2);
  EXPECT_EQ(registry.find("alpha"), alpha);
}

TEST(ServiceTenantRegistry, GrowsWellPastInitialCapacity) {
  const System base = make_base(3);
  const SessionConfig cfg = make_session_config(base);
  TenantRegistry registry;
  constexpr int kTenants = 1000;
  for (int i = 0; i < kTenants; ++i) {
    ASSERT_EQ(registry.add("tenant-" + std::to_string(i),
                           std::make_unique<AdmissionSession>(base, cfg)),
              i);
  }
  ASSERT_EQ(registry.count(), kTenants);
  for (int i = 0; i < kTenants; ++i) {
    const std::string name = "tenant-" + std::to_string(i);
    EXPECT_EQ(registry.find(name), i) << name;
    EXPECT_EQ(registry.name(i), name);
  }
  EXPECT_EQ(registry.find("tenant-1000"), -1);
}

TEST(ServiceTenantRegistry, ShardPlacementIsPureAndInRange) {
  for (const int shards : {1, 2, 3, 8}) {
    std::set<int> hit;
    for (int i = 0; i < 64; ++i) {
      std::string name = "t";
      name += std::to_string(i);
      const int s = TenantRegistry::shard_of(name, shards);
      ASSERT_GE(s, 0) << name;
      ASSERT_LT(s, shards) << name;
      EXPECT_EQ(s, TenantRegistry::shard_of(name, shards));  // pure
      hit.insert(s);
    }
    // The hash spreads 64 names over every small shard count.
    EXPECT_EQ(static_cast<int>(hit.size()), shards);
  }
  EXPECT_EQ(TenantRegistry::shard_of("anything", 1), 0);
  EXPECT_EQ(TenantRegistry::shard_of("anything", 0), 0);
  EXPECT_NE(TenantRegistry::hash("alpha"), TenantRegistry::hash("beta"));
}

// ---------------------------------------------------------------------------
// ShardedScheduler

/// The acceptance bar: per-tenant byte-identity against the sequential
/// single-tenant reference at shard widths 1, 2, and hardware, for random
/// interleavings of several tenants (plus unroutable salt) and a pump size
/// small enough to force many mid-stream drains.
TEST(ServiceSharded, PerTenantByteIdentityAcrossShardWidths) {
  const System base = make_base(42);
  const SessionConfig cfg = make_session_config(base);
  const std::vector<std::string> tenants = {"alpha", "beta", "gamma", "delta"};

  // Per-tenant request sequences, then a random global interleaving.
  Rng rng(0x5AAD5);
  std::map<std::string, std::vector<std::string>> streams;
  for (const std::string& t : tenants) {
    std::vector<std::string>& lines = streams[t];
    const int n = rng.uniform_int(12, 24);
    for (int i = 0; i < n; ++i) lines.push_back(random_line(rng, t, base, i));
  }
  std::vector<std::string> interleaved;
  {
    std::map<std::string, std::size_t> cursor;
    std::vector<std::string> open(tenants.begin(), tenants.end());
    while (!open.empty()) {
      // Unroutable salt: these must not disturb any tenant's stream.
      if (interleaved.size() == 3) {
        interleaved.push_back("{\"op\": \"query\"}");
      }
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(open.size()) - 1));
      const std::string& t = open[pick];
      interleaved.push_back(streams[t][cursor[t]++]);
      if (cursor[t] == streams[t].size()) {
        open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }
    interleaved.push_back("{\"tenant\": \"ghost\", \"op\": \"query\"}");
  }

  // Sequential per-tenant references.
  std::map<std::string, std::string> expected;
  for (const std::string& t : tenants) {
    AdmissionSession session(base, cfg);
    std::ostringstream in_text;
    for (const std::string& line : streams[t]) in_text << line << "\n";
    std::istringstream in(in_text.str());
    std::ostringstream out;
    service::run_request_stream(session, in, out);
    expected[t] = strip_latency(out.str());
  }

  for (const int width : {1, 2, 0}) {
    TenantRegistry registry;
    for (const std::string& t : tenants) {
      registry.add(t, std::make_unique<AdmissionSession>(base, cfg));
    }
    ShardedOptions options;
    options.shards = width;
    options.pump_lines = 7;  // many mid-stream pumps
    std::ostringstream out;
    ShardedScheduler scheduler(registry, out, options);
    for (const std::string& line : interleaved) scheduler.submit_line(line);
    scheduler.finish();

    const ShardedStats stats = scheduler.stats();
    EXPECT_EQ(stats.unrouted, 2u) << "shards " << width;
    EXPECT_EQ(stats.shed, 0u) << "shards " << width;
    EXPECT_GT(stats.pumps, 1u) << "shards " << width;

    std::map<std::string, std::string> got =
        split_by_tenant(strip_latency(out.str()));
    for (const std::string& t : tenants) {
      EXPECT_EQ(got[t], expected[t]) << "tenant " << t << " shards " << width;
    }
  }
}

/// Responses come back in global arrival order regardless of which shard
/// served them: request i's response is line i of the output.
TEST(ServiceSharded, ResponsesInterleaveInGlobalArrivalOrder) {
  const System base = make_base(5);
  const SessionConfig cfg = make_session_config(base);
  TenantRegistry registry;
  registry.add("alpha", std::make_unique<AdmissionSession>(base, cfg));
  registry.add("beta", std::make_unique<AdmissionSession>(base, cfg));

  ShardedOptions options;
  options.shards = 2;
  std::ostringstream out;
  ShardedScheduler scheduler(registry, out, options);
  std::vector<std::string> want_tenants;
  for (int i = 0; i < 9; ++i) {
    const std::string t = (i % 3 == 0) ? "beta" : "alpha";
    scheduler.submit_line("{\"tenant\": \"" + t + "\", \"op\": \"query\"}");
    want_tenants.push_back(t);
  }
  scheduler.finish();

  std::istringstream lines(out.str());
  std::string line;
  std::size_t i = 0;
  while (std::getline(lines, line)) {
    const json::ParseResult doc = json::parse(line);
    ASSERT_TRUE(doc.ok) << line;
    ASSERT_LT(i, want_tenants.size());
    EXPECT_EQ(doc.value.find("tenant")->as_string(), want_tenants[i]) << line;
    ++i;
  }
  EXPECT_EQ(i, want_tenants.size());
}

/// Unroutable lines answer from the untenanted bucket with its own 1-based
/// numbering: bad_request for a missing tenant field or a parse error,
/// not_found (non-retryable) for an unknown tenant.
TEST(ServiceSharded, UnroutableLinesAnswerFromUntenantedBucket) {
  const System base = make_base(5);
  const SessionConfig cfg = make_session_config(base);
  TenantRegistry registry;
  registry.add("alpha", std::make_unique<AdmissionSession>(base, cfg));

  ShardedOptions options;
  std::ostringstream out;
  ShardedScheduler scheduler(registry, out, options);
  scheduler.submit_line("{\"op\": \"query\"}");                        // no tenant
  scheduler.submit_line("{\"tenant\": \"ghost\", \"op\": \"query\"}");  // unknown
  scheduler.submit_line("{broken");                                   // unparseable
  scheduler.submit_line("{\"tenant\": 7, \"op\": \"query\"}");        // bad type
  scheduler.finish();

  const ShardedStats stats = scheduler.stats();
  EXPECT_EQ(stats.unrouted, 4u);
  EXPECT_EQ(stats.routed, 0u);
  EXPECT_EQ(stats.stream.requests, 4);
  EXPECT_EQ(stats.stream.errors, 4);

  std::vector<std::string> codes;
  std::istringstream lines(out.str());
  std::string line;
  int no = 0;
  while (std::getline(lines, line)) {
    const json::ParseResult doc = json::parse(line);
    ASSERT_TRUE(doc.ok) << line;
    ++no;
    EXPECT_EQ(static_cast<int>(doc.value.find("request")->as_number()), no)
        << line;
    EXPECT_EQ(static_cast<int>(doc.value.find("line")->as_number()), no)
        << line;
    EXPECT_FALSE(doc.value.find("ok")->as_bool()) << line;
    const json::Value* error = doc.value.find("error");
    ASSERT_NE(error, nullptr) << line;
    ASSERT_TRUE(error->is_object()) << line;
    codes.push_back(error->find("code")->as_string());
    EXPECT_FALSE(error->find("retryable")->as_bool()) << line;
    ASSERT_NE(doc.value.find("trace_id"), nullptr) << line;
    EXPECT_FALSE(doc.value.find("trace_id")->as_string().empty()) << line;
  }
  const std::vector<std::string> want = {"bad_request", "not_found",
                                         "bad_request", "bad_request"};
  EXPECT_EQ(codes, want);
  // The unknown-tenant message names the tenant it failed to resolve.
  EXPECT_NE(out.str().find("no tenant named 'ghost'"), std::string::npos);
}

/// Routing-level backpressure stays tenant-scoped: a tenant over its
/// per-window bound sheds retryable `overloaded` responses while a quiet
/// sibling on the SAME shard (width 1 forces that) is untouched -- and the
/// quiet tenant's responses stay byte-identical to its solo reference.
TEST(ServiceSharded, HotTenantShedsWithoutStarvingSiblings) {
  const System base = make_base(9);
  const SessionConfig cfg = make_session_config(base);
  const std::string quiet_line = "{\"tenant\": \"quiet\", \"op\": \"query\"}";

  std::string quiet_expected;
  {
    AdmissionSession session(base, cfg);
    std::istringstream in(quiet_line + "\n" + quiet_line + "\n");
    std::ostringstream out;
    service::run_request_stream(session, in, out);
    quiet_expected = strip_latency(out.str());
  }

  TenantRegistry registry;
  registry.add("hot", std::make_unique<AdmissionSession>(base, cfg));
  registry.add("quiet", std::make_unique<AdmissionSession>(base, cfg));
  ShardedOptions options;
  options.shards = 1;
  options.tenant_max_inflight = 2;
  std::ostringstream out;
  ShardedScheduler scheduler(registry, out, options);
  // One pump window: 6 hot reads (4 over the bound) around 2 quiet reads.
  for (int i = 0; i < 3; ++i) {
    scheduler.submit_line("{\"tenant\": \"hot\", \"op\": \"query\"}");
  }
  scheduler.submit_line(quiet_line);
  for (int i = 0; i < 3; ++i) {
    scheduler.submit_line("{\"tenant\": \"hot\", \"op\": \"query\"}");
  }
  scheduler.submit_line(quiet_line);
  scheduler.finish();

  const int hot = registry.find("hot");
  const int quiet = registry.find("quiet");
  EXPECT_EQ(scheduler.stats().shed, 4u);
  EXPECT_EQ(scheduler.tenant_stats(hot).rejected, 4);
  EXPECT_EQ(scheduler.tenant_stats(quiet).rejected, 0);
  EXPECT_EQ(scheduler.tenant_stats(quiet).errors, 0);

  std::map<std::string, std::string> got =
      split_by_tenant(strip_latency(out.str()));
  EXPECT_EQ(got["quiet"], quiet_expected);
  // Shed responses carry the retryable v2 overloaded error.
  int overloaded = 0;
  std::istringstream lines(got["hot"]);
  std::string line;
  while (std::getline(lines, line)) {
    const json::ParseResult doc = json::parse(line);
    ASSERT_TRUE(doc.ok) << line;
    const json::Value* error = doc.value.find("error");
    if (error == nullptr) continue;
    ASSERT_TRUE(error->is_object()) << line;
    EXPECT_EQ(error->find("code")->as_string(), "overloaded") << line;
    EXPECT_TRUE(error->find("retryable")->as_bool()) << line;
    ++overloaded;
  }
  EXPECT_EQ(overloaded, 4);
}

/// Shard-level fair share: a shard over shard_max_inflight sheds only the
/// tenants at or above an equal split of the bound, so the hot tenant
/// cannot push a light sibling's lines out of the window.
TEST(ServiceSharded, ShardFairShareShedsOnlyHotTenants) {
  const System base = make_base(9);
  const SessionConfig cfg = make_session_config(base);
  TenantRegistry registry;
  registry.add("hot", std::make_unique<AdmissionSession>(base, cfg));
  registry.add("light", std::make_unique<AdmissionSession>(base, cfg));
  ShardedOptions options;
  options.shards = 1;
  options.shard_max_inflight = 4;
  std::ostringstream out;
  ShardedScheduler scheduler(registry, out, options);
  // The hot tenant fills the whole shard bound, then the light tenant's
  // first-ever line arrives: under fair share (4 / 1 active = 4 > 0 queued)
  // it still lands while the hot tenant keeps shedding.
  for (int i = 0; i < 6; ++i) {
    scheduler.submit_line("{\"tenant\": \"hot\", \"op\": \"query\"}");
  }
  scheduler.submit_line("{\"tenant\": \"light\", \"op\": \"query\"}");
  scheduler.submit_line("{\"tenant\": \"hot\", \"op\": \"query\"}");
  scheduler.finish();

  EXPECT_EQ(scheduler.tenant_stats(registry.find("hot")).rejected, 3);
  EXPECT_EQ(scheduler.tenant_stats(registry.find("light")).rejected, 0);
  EXPECT_EQ(scheduler.tenant_stats(registry.find("light")).errors, 0);
}

/// Lifecycle mirrors the single-session scheduler: finish() is idempotent
/// and submit_line afterwards is a defined programming error.
TEST(ServiceSharded, FinishIsIdempotentAndSubmitAfterFinishThrows) {
  const System base = make_base(5);
  const SessionConfig cfg = make_session_config(base);
  TenantRegistry registry;
  registry.add("alpha", std::make_unique<AdmissionSession>(base, cfg));
  ShardedOptions options;
  std::ostringstream out;
  ShardedScheduler scheduler(registry, out, options);
  scheduler.submit_line("{\"tenant\": \"alpha\", \"op\": \"query\"}");
  scheduler.finish();
  const std::string first = out.str();
  EXPECT_FALSE(first.empty());
  scheduler.finish();
  EXPECT_EQ(out.str(), first);
  EXPECT_THROW(
      scheduler.submit_line("{\"tenant\": \"alpha\", \"op\": \"query\"}"),
      std::logic_error);
  EXPECT_EQ(out.str(), first);
}

/// run_sharded_stream drives a whole istream, skipping comments and blanks,
/// and reports aggregate stats.
TEST(ServiceSharded, RunShardedStreamDrivesAnIstream) {
  const System base = make_base(5);
  const SessionConfig cfg = make_session_config(base);
  TenantRegistry registry;
  registry.add("alpha", std::make_unique<AdmissionSession>(base, cfg));
  registry.add("beta", std::make_unique<AdmissionSession>(base, cfg));
  std::istringstream in(
      "# header comment\n"
      "\n"
      "{\"tenant\": \"alpha\", \"op\": \"query\"}\n"
      "{\"tenant\": \"beta\", \"op\": \"query\"}\n"
      "{\"tenant\": \"ghost\", \"op\": \"query\"}\n");
  std::ostringstream out;
  ShardedOptions options;
  options.shards = 2;
  const ShardedStats stats =
      service::run_sharded_stream(registry, in, out, options);
  EXPECT_EQ(stats.stream.requests, 3);
  EXPECT_EQ(stats.routed, 2u);
  EXPECT_EQ(stats.unrouted, 1u);
  EXPECT_EQ(stats.stream.errors, 1);
  std::istringstream lines(out.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) ++count;
  EXPECT_EQ(count, 3);
}

/// shard_of spreads tenants evenly: a chi-square-style bound over 10k
/// generated names at widths 2, 3, and 8. With a uniform placement the
/// statistic follows chi-square with at most 7 degrees of freedom, so 40
/// is astronomically generous -- a systematic bias (e.g. folding only the
/// low hash bits badly) blows through it immediately.
TEST(ServiceSharded, ShardOfSpreadsTenantsEvenly) {
  constexpr int kTenants = 10000;
  std::vector<std::string> names;
  names.reserve(kTenants);
  for (int i = 0; i < kTenants; ++i) {
    names.push_back("tenant-" + std::to_string(i));
  }
  for (int shards : {2, 3, 8}) {
    std::vector<int> counts(static_cast<std::size_t>(shards), 0);
    for (const std::string& n : names) {
      const int s = TenantRegistry::shard_of(n, shards);
      ASSERT_GE(s, 0);
      ASSERT_LT(s, shards);
      ++counts[static_cast<std::size_t>(s)];
    }
    const double expected =
        static_cast<double>(kTenants) / static_cast<double>(shards);
    double chi2 = 0.0;
    for (int c : counts) {
      const double d = static_cast<double>(c) - expected;
      chi2 += d * d / expected;
    }
    EXPECT_LT(chi2, 40.0) << "shards=" << shards << " chi2=" << chi2;
    for (int c : counts) EXPECT_GT(c, 0) << "empty shard at width " << shards;
  }
}

/// Placement is width-independent and a pure function of the name: width 1
/// collapses to shard 0, and the shard at any width never depends on what
/// else has been hashed before or since.
TEST(ServiceSharded, ShardOfIsPureAndWidthIndependent) {
  const std::vector<std::string> names = {
      "alpha", "beta", "gamma", "tenant-42", "a", "", "long-tenant-name-x"};
  std::vector<int> first;
  for (const std::string& n : names) {
    EXPECT_EQ(TenantRegistry::shard_of(n, 1), 0);
    first.push_back(TenantRegistry::shard_of(n, 8));
  }
  // Interleave unrelated hashing, then recompute in reverse order.
  for (int i = 0; i < 1000; ++i) {
    (void)TenantRegistry::hash("noise-" + std::to_string(i));
  }
  for (std::size_t i = names.size(); i-- > 0;) {
    EXPECT_EQ(TenantRegistry::shard_of(names[i], 8), first[i]) << names[i];
  }
}

/// Rebuilding the registry in a different insertion order may move dense
/// indices but never moves a tenant's shard, and name resolution stays
/// consistent -- the property that keeps per-tenant byte-identity
/// width-independent across restarts.
TEST(ServiceSharded, ShardPlacementStableAcrossRegistryRebuilds) {
  const System base = make_base(7);
  const SessionConfig cfg = make_session_config(base);
  std::vector<std::string> names;
  for (int i = 0; i < 12; ++i) names.push_back("t" + std::to_string(i));

  constexpr int kShards = 3;
  std::map<std::string, int> shard_by_name;
  for (const std::string& n : names) {
    shard_by_name[n] = TenantRegistry::shard_of(n, kShards);
  }

  for (int rebuild = 0; rebuild < 3; ++rebuild) {
    std::vector<std::string> order = names;
    // Rotate the insertion order differently each rebuild.
    std::rotate(order.begin(),
                order.begin() + rebuild * 4, order.end());
    if (rebuild == 2) std::reverse(order.begin(), order.end());
    TenantRegistry registry;
    for (const std::string& n : order) {
      registry.add(n, std::make_unique<AdmissionSession>(base, cfg));
    }
    ASSERT_EQ(registry.count(), static_cast<int>(names.size()));
    for (const std::string& n : names) {
      const int idx = registry.find(n);
      ASSERT_GE(idx, 0) << n;
      EXPECT_EQ(registry.name(idx), n);
      EXPECT_EQ(TenantRegistry::shard_of(n, kShards), shard_by_name[n]) << n;
    }
  }
}

}  // namespace
}  // namespace rta
