// Property tests: analysis vs discrete-event simulation on randomized job
// shops. These validate the paper's theorems empirically:
//
//   * SPP/Exact (Thms 1-3) matches the simulator instance-for-instance;
//   * the bounds analyzers (Thms 4-9) dominate simulated response times;
//   * lower/upper service bounds bracket the observed service curves;
//   * the holistic baseline dominates the simulation and coincides with the
//     exact analysis on single-stage shops (the paper's §5.2 observation).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bounds.hpp"
#include "analysis/holistic.hpp"
#include "analysis/spp_exact.hpp"
#include "eval/validation.hpp"
#include "model/priority.hpp"
#include "sim/simulator.hpp"
#include "workload/jobshop.hpp"

namespace rta {
namespace {

struct ShopCase {
  std::size_t stages;
  std::size_t procs;
  std::size_t jobs;
  ArrivalPattern pattern;
  double utilization;
};

std::string case_name(const testing::TestParamInfo<ShopCase>& info) {
  const ShopCase& c = info.param;
  return "s" + std::to_string(c.stages) + "p" + std::to_string(c.procs) +
         "j" + std::to_string(c.jobs) +
         (c.pattern == ArrivalPattern::kPeriodic ? "per" : "aper") + "u" +
         std::to_string(static_cast<int>(c.utilization * 100));
}

System make_shop(const ShopCase& c, std::uint64_t seed,
                 SchedulerKind scheduler) {
  JobShopConfig cfg;
  cfg.stages = c.stages;
  cfg.processors_per_stage = c.procs;
  cfg.jobs = c.jobs;
  cfg.pattern = c.pattern;
  cfg.utilization = c.utilization;
  cfg.window_periods = 6.0;
  cfg.scheduler = scheduler;
  cfg.min_rate = 0.15;
  Rng rng(seed);
  System sys = generate_jobshop(cfg, rng);
  assign_proportional_deadline_monotonic(sys);
  return sys;
}

class ShopProperty : public testing::TestWithParam<ShopCase> {};

constexpr std::uint64_t kSeeds = 8;

TEST_P(ShopProperty, ExactSppMatchesSimulationPerInstance) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const System sys = make_shop(GetParam(), seed, SchedulerKind::kSpp);
    const AnalysisResult r = ExactSppAnalyzer().analyze(sys);
    ASSERT_TRUE(r.ok) << r.error;
    const SimResult s = simulate(sys, r.horizon);
    for (int k = 0; k < sys.job_count(); ++k) {
      ASSERT_EQ(r.jobs[k].per_instance.size(), s.traces[k].size());
      for (std::size_t m = 0; m < s.traces[k].size(); ++m) {
        const Time simulated = s.traces[k][m].completed()
                                   ? s.traces[k][m].response()
                                   : kTimeInfinity;
        const Time analyzed = r.jobs[k].per_instance[m];
        if (std::isinf(simulated) || std::isinf(analyzed)) {
          EXPECT_EQ(std::isinf(simulated), std::isinf(analyzed))
              << "seed " << seed << " job " << k << " instance " << m;
        } else {
          EXPECT_NEAR(analyzed, simulated, 1e-6)
              << "seed " << seed << " job " << k << " instance " << m;
        }
      }
    }
  }
}

TEST_P(ShopProperty, ExactServiceCurveMatchesSimulation) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const System sys = make_shop(GetParam(), seed, SchedulerKind::kSpp);
    AnalysisConfig cfg;
    cfg.record_curves = true;
    const AnalysisResult r = ExactSppAnalyzer(cfg).analyze(sys);
    ASSERT_TRUE(r.ok) << r.error;
    const SimResult s = simulate(sys, r.horizon);
    if (!s.all_completed) continue;  // service beyond horizon truncated
    for (int k = 0; k < sys.job_count(); ++k) {
      for (std::size_t h = 0; h < sys.job(k).chain.size(); ++h) {
        const PwlCurve& analyzed =
            r.jobs[k].hops[h].curves[0].service_upper;
        const PwlCurve observed =
            s.service_curve({k, static_cast<int>(h)});
        EXPECT_LE(analyzed.max_abs_difference(observed), 1e-6)
            << "seed " << seed << " job " << k << " hop " << h;
      }
    }
  }
}

// The approximate analyzers must never report a bound below an observed
// response (soundness of Theorems 4-9 with the fixes documented in
// bounds.hpp/DESIGN.md).
TEST_P(ShopProperty, SppAppBoundsDominateSimulation) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const System sys = make_shop(GetParam(), seed, SchedulerKind::kSpp);
    const ValidationReport rep =
        validate_method(Method::kSppApp, sys, AnalysisConfig{});
    ASSERT_TRUE(rep.analysis_ok) << rep.error;
    EXPECT_TRUE(rep.bounds_hold())
        << "seed " << seed << " min slack " << rep.min_slack();
  }
}

TEST_P(ShopProperty, SpnpBoundsDominateSimulation) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const System sys = make_shop(GetParam(), seed, SchedulerKind::kSpnp);
    const ValidationReport rep =
        validate_method(Method::kSpnpApp, sys, AnalysisConfig{});
    ASSERT_TRUE(rep.analysis_ok) << rep.error;
    EXPECT_TRUE(rep.bounds_hold())
        << "seed " << seed << " min slack " << rep.min_slack();
  }
}

TEST_P(ShopProperty, FcfsBoundsDominateSimulation) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const System sys = make_shop(GetParam(), seed, SchedulerKind::kFcfs);
    const ValidationReport rep =
        validate_method(Method::kFcfsApp, sys, AnalysisConfig{});
    ASSERT_TRUE(rep.analysis_ok) << rep.error;
    EXPECT_TRUE(rep.bounds_hold())
        << "seed " << seed << " min slack " << rep.min_slack();
  }
}

// Bounds analyzers' service curves must bracket the observed service.
TEST_P(ShopProperty, ServiceBoundsBracketSimulation) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    for (SchedulerKind kind :
         {SchedulerKind::kSpnp, SchedulerKind::kFcfs}) {
      const System sys = make_shop(GetParam(), seed, kind);
      AnalysisConfig cfg;
      cfg.record_curves = true;
      const AnalysisResult r = BoundsAnalyzer(cfg).analyze(sys);
      ASSERT_TRUE(r.ok) << r.error;
      const SimResult s = simulate(sys, r.horizon);
      if (!s.all_completed) continue;
      for (int k = 0; k < sys.job_count(); ++k) {
        for (std::size_t h = 0; h < sys.job(k).chain.size(); ++h) {
          const SubjobCurves& c = r.jobs[k].hops[h].curves[0];
          const PwlCurve observed =
              s.service_curve({k, static_cast<int>(h)});
          for (const Knot& knot : observed.knots()) {
            const double sim_v = observed.eval(knot.t);
            EXPECT_LE(c.service_lower.eval(knot.t), sim_v + 1e-6)
                << to_string(kind) << " seed " << seed << " job " << k
                << " hop " << h << " t=" << knot.t;
          }
        }
      }
    }
  }
}

// SPP exact never exceeds the approximate SPP bound (the ablation): the
// approximation is an over-approximation of the same system.
TEST_P(ShopProperty, ExactDominatedByApproximateSpp) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const System sys = make_shop(GetParam(), seed, SchedulerKind::kSpp);
    const AnalysisResult exact = ExactSppAnalyzer().analyze(sys);
    const AnalysisResult approx = BoundsAnalyzer().analyze(sys);
    ASSERT_TRUE(exact.ok && approx.ok);
    for (int k = 0; k < sys.job_count(); ++k) {
      if (std::isinf(approx.jobs[k].wcrt)) continue;
      EXPECT_LE(exact.jobs[k].wcrt, approx.jobs[k].wcrt + 1e-6)
          << "seed " << seed << " job " << k;
    }
  }
}

// Heterogeneous systems (§6: "different processors run different
// schedulers"): random per-processor scheduler mix, bounds must still
// dominate the simulation.
TEST_P(ShopProperty, MixedSchedulerBoundsDominateSimulation) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    System sys = make_shop(GetParam(), seed, SchedulerKind::kSpp);
    Rng rng(seed * 977 + 5);
    for (int p = 0; p < sys.processor_count(); ++p) {
      const int pick = rng.uniform_int(0, 2);
      sys.set_scheduler(p, pick == 0   ? SchedulerKind::kSpp
                            : pick == 1 ? SchedulerKind::kSpnp
                                        : SchedulerKind::kFcfs);
    }
    assign_proportional_deadline_monotonic(sys);
    const AnalysisResult r = BoundsAnalyzer().analyze(sys);
    ASSERT_TRUE(r.ok) << r.error;
    const SimResult s = simulate(sys, r.horizon);
    for (int k = 0; k < sys.job_count(); ++k) {
      if (std::isinf(r.jobs[k].wcrt)) continue;
      const Time observed = s.worst_response[k];
      EXPECT_GE(r.jobs[k].wcrt, observed - 1e-6)
          << "seed " << seed << " job " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shops, ShopProperty,
    testing::Values(
        ShopCase{1, 1, 3, ArrivalPattern::kPeriodic, 0.5},
        ShopCase{1, 2, 4, ArrivalPattern::kPeriodic, 0.7},
        ShopCase{2, 2, 4, ArrivalPattern::kPeriodic, 0.5},
        ShopCase{4, 2, 6, ArrivalPattern::kPeriodic, 0.4},
        ShopCase{4, 2, 6, ArrivalPattern::kPeriodic, 0.8},
        ShopCase{1, 1, 3, ArrivalPattern::kAperiodic, 0.5},
        ShopCase{2, 2, 4, ArrivalPattern::kAperiodic, 0.6},
        ShopCase{4, 2, 6, ArrivalPattern::kAperiodic, 0.4},
        ShopCase{3, 1, 5, ArrivalPattern::kAperiodic, 0.7}),
    case_name);

// Holistic baseline: dominates simulation (it bounds the worst case over all
// phasings) and coincides with the exact analysis on single-stage shops
// (§5.2: "for a single processor system, both methods predict the same
// response time" -- the generated trace is synchronous, i.e. worst-case).
TEST(HolisticVsExact, DominatesSimulationOnPeriodicShops) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const System sys = make_shop({2, 2, 4, ArrivalPattern::kPeriodic, 0.5},
                                 seed, SchedulerKind::kSpp);
    const ValidationReport rep =
        validate_method(Method::kSppSL, sys, AnalysisConfig{});
    ASSERT_TRUE(rep.analysis_ok) << rep.error;
    EXPECT_TRUE(rep.bounds_hold())
        << "seed " << seed << " min slack " << rep.min_slack();
  }
}

TEST(HolisticVsExact, EqualOnSingleStage) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const System sys = make_shop({1, 1, 4, ArrivalPattern::kPeriodic, 0.6},
                                 seed, SchedulerKind::kSpp);
    const AnalysisResult exact = ExactSppAnalyzer().analyze(sys);
    const AnalysisResult holistic = HolisticAnalyzer().analyze(sys);
    ASSERT_TRUE(exact.ok) << exact.error;
    ASSERT_TRUE(holistic.ok) << holistic.error;
    for (int k = 0; k < sys.job_count(); ++k) {
      if (std::isinf(holistic.jobs[k].wcrt)) continue;
      EXPECT_NEAR(exact.jobs[k].wcrt, holistic.jobs[k].wcrt, 1e-6)
          << "seed " << seed << " job " << k;
    }
  }
}

TEST(HolisticVsExact, NeverTighterThanExactMultiStage) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const System sys = make_shop({3, 2, 5, ArrivalPattern::kPeriodic, 0.5},
                                 seed, SchedulerKind::kSpp);
    const AnalysisResult exact = ExactSppAnalyzer().analyze(sys);
    const AnalysisResult holistic = HolisticAnalyzer().analyze(sys);
    ASSERT_TRUE(exact.ok && holistic.ok);
    for (int k = 0; k < sys.job_count(); ++k) {
      if (std::isinf(holistic.jobs[k].wcrt)) continue;
      EXPECT_LE(exact.jobs[k].wcrt, holistic.jobs[k].wcrt + 1e-6)
          << "seed " << seed << " job " << k;
    }
  }
}

TEST(HolisticVsExact, RejectsAperiodicArrivals) {
  const System sys = make_shop({2, 1, 3, ArrivalPattern::kAperiodic, 0.5}, 1,
                               SchedulerKind::kSpp);
  const AnalysisResult r = HolisticAnalyzer().analyze(sys);
  EXPECT_FALSE(r.ok);
}

}  // namespace
}  // namespace rta
