// Tests for the FCFS bounds (§4.2.3, Theorems 7-9): utilization function,
// arrival-order service bounds, and tie handling.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bounds.hpp"
#include "curve/transforms.hpp"
#include "sim/simulator.hpp"

namespace rta {
namespace {

Job make_job(const std::string& name, double deadline,
             std::vector<Subjob> chain, std::vector<Time> releases) {
  Job j;
  j.name = name;
  j.deadline = deadline;
  j.chain = std::move(chain);
  j.arrivals = ArrivalSequence(std::move(releases));
  return j;
}

// Theorem 7 via the shared transform: U(t) = min_{0<=s<=t}{t - s + G(s^-)}.
TEST(FcfsTheorem7, UtilizationOfSingleBurst) {
  // Work: 3 units arriving at t = 1. U = 0 until 1, then slope 1 until all
  // work done at t = 4, then flat... then nothing more arrives.
  const PwlCurve g = curve_scale(PwlCurve::step(10.0, {1.0}), 3.0);
  const PwlCurve u = service_transform(PwlCurve::identity(10.0), g);
  EXPECT_DOUBLE_EQ(u.eval(1.0), 0.0);
  EXPECT_DOUBLE_EQ(u.eval(2.0), 1.0);
  EXPECT_DOUBLE_EQ(u.eval(4.0), 3.0);
  EXPECT_DOUBLE_EQ(u.eval(9.0), 3.0);
}

TEST(FcfsTheorem7, BusyServerTracksElapsedTime) {
  // Overloaded: 10 units at t = 0 -> U(t) = t over the horizon.
  const PwlCurve g = curve_scale(PwlCurve::step(5.0, {0.0}), 10.0);
  const PwlCurve u = service_transform(PwlCurve::identity(5.0), g);
  EXPECT_TRUE(u.approx_equal(PwlCurve::identity(5.0)));
}

TEST(Fcfs, SingleSubjobExactWhenAlone) {
  System sys(1, SchedulerKind::kFcfs);
  sys.add_job(make_job("A", 10.0, {{0, 2.0, 0}}, {0.0, 5.0}));
  const AnalysisResult r = BoundsAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NEAR(r.jobs[0].wcrt, 2.0, 1e-9);
}

TEST(Fcfs, AccountsForQueueingAhead) {
  // B arrives at 0 (tau 3); A arrives at 1 (tau 1): A waits for B ->
  // A completes at 4, response 3.
  System sys(1, SchedulerKind::kFcfs);
  sys.add_job(make_job("A", 10.0, {{0, 1.0, 0}}, {1.0}));
  sys.add_job(make_job("B", 10.0, {{0, 3.0, 0}}, {0.0}));
  const AnalysisResult r = BoundsAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NEAR(r.jobs[0].wcrt, 3.0, 1e-9);
  EXPECT_NEAR(r.jobs[1].wcrt, 3.0, 1e-9);
  const SimResult s = simulate(sys, 20.0);
  EXPECT_DOUBLE_EQ(s.worst_response[0], 3.0);
}

TEST(Fcfs, TiesAssumeAdversarialOrder) {
  // Two simultaneous arrivals of 1 unit each: the bound must cover being
  // served second (response 2) for BOTH jobs.
  System sys(1, SchedulerKind::kFcfs);
  sys.add_job(make_job("A", 10.0, {{0, 1.0, 0}}, {0.0}));
  sys.add_job(make_job("B", 10.0, {{0, 1.0, 0}}, {0.0}));
  const AnalysisResult r = BoundsAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GE(r.jobs[0].wcrt, 2.0 - 1e-9);
  EXPECT_GE(r.jobs[1].wcrt, 2.0 - 1e-9);
}

TEST(Fcfs, LaterArrivalsDoNotDelayEarlierOnes) {
  // A huge job arriving after A must not affect A's bound.
  System sys(1, SchedulerKind::kFcfs);
  sys.add_job(make_job("A", 10.0, {{0, 1.0, 0}}, {0.0}));
  sys.add_job(make_job("Big", 100.0, {{0, 50.0, 0}}, {2.0}));
  const AnalysisResult r = BoundsAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NEAR(r.jobs[0].wcrt, 1.0, 1e-9);
}

TEST(Fcfs, TwoHopPipelineBoundsHold) {
  System sys(2, SchedulerKind::kFcfs);
  sys.add_job(
      make_job("A", 50.0, {{0, 0.5, 0}, {1, 2.0, 0}}, {0.0, 1.0, 2.0}));
  sys.add_job(make_job("B", 50.0, {{0, 1.0, 0}, {1, 0.5, 0}}, {0.2, 3.0}));
  const AnalysisResult r = BoundsAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  const SimResult s = simulate(sys, r.horizon);
  ASSERT_TRUE(s.all_completed);
  for (int k = 0; k < 2; ++k) {
    EXPECT_GE(r.jobs[k].wcrt, s.worst_response[k] - 1e-9) << "job " << k;
  }
}

TEST(Fcfs, ServiceUpperIncludesTheorem9Slack) {
  // S̄ = S̲ + tau (capped): before the first completion the upper bound
  // allows up to one in-progress instance.
  System sys(1, SchedulerKind::kFcfs);
  sys.add_job(make_job("A", 10.0, {{0, 2.0, 0}}, {0.0}));
  AnalysisConfig cfg;
  cfg.record_curves = true;
  const AnalysisResult r = BoundsAnalyzer(cfg).analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  const SubjobCurves& c = r.jobs[0].hops[0].curves[0];
  EXPECT_DOUBLE_EQ(c.service_lower.eval(1.0), 0.0);   // not provably done
  EXPECT_DOUBLE_EQ(c.service_lower.eval(2.0), 2.0);   // provably done at 2
  EXPECT_LE(c.service_upper.eval(1.0), 1.0 + 1e-9);   // capped by t
  EXPECT_GE(c.service_upper.eval(1.0), 1.0 - 1e-9);   // = min(S̲+tau, t, c̄)
}

TEST(Fcfs, OverloadedProcessorRejects) {
  System sys(1, SchedulerKind::kFcfs);
  std::vector<Time> rel;
  for (int i = 0; i < 30; ++i) rel.push_back(0.5 * i);
  sys.add_job(make_job("A", 2.0, {{0, 1.0, 0}}, std::move(rel)));
  const AnalysisResult r = BoundsAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.jobs[0].schedulable);
}

}  // namespace
}  // namespace rta
