// Unit tests for arrival sequences and the paper's generators (Eq. 25/27).
#include <gtest/gtest.h>

#include <cmath>

#include "curve/arrival.hpp"

namespace rta {
namespace {

TEST(ArrivalSequence, PeriodicMatchesEq25) {
  // Eq. 25: t_m = (m-1)/x with x = 0.5 -> period 2.
  const ArrivalSequence a = ArrivalSequence::periodic(2.0, 10.0);
  ASSERT_EQ(a.count(), 6u);
  for (std::size_t m = 1; m <= 6; ++m) {
    EXPECT_DOUBLE_EQ(a.release(m), 2.0 * static_cast<double>(m - 1));
  }
  EXPECT_DOUBLE_EQ(a.min_inter_arrival(), 2.0);
}

TEST(ArrivalSequence, PeriodicWithOffset) {
  const ArrivalSequence a = ArrivalSequence::periodic(3.0, 10.0, 1.0);
  ASSERT_EQ(a.count(), 4u);  // 1, 4, 7, 10
  EXPECT_DOUBLE_EQ(a.release(1), 1.0);
  EXPECT_DOUBLE_EQ(a.release(4), 10.0);
}

TEST(ArrivalSequence, BurstyEq27StartsAtZero) {
  const ArrivalSequence a = ArrivalSequence::bursty_eq27(0.5, 50.0);
  ASSERT_GE(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.release(1), 0.0);  // m=1: sqrt(x^2)/x - 1 = 0
}

TEST(ArrivalSequence, BurstyEq27MatchesFormula) {
  const double x = 0.7;
  const ArrivalSequence a = ArrivalSequence::bursty_eq27(x, 30.0);
  for (std::size_t m = 1; m <= a.count(); ++m) {
    const double dm = static_cast<double>(m - 1);
    EXPECT_NEAR(a.release(m), std::sqrt(x * x + dm * dm) / x - 1.0, 1e-12);
  }
}

TEST(ArrivalSequence, BurstyEq27IsInitiallyBursty) {
  // Early gaps are shorter than the asymptotic period 1/x; gaps increase
  // towards 1/x.
  const double x = 0.4;
  const ArrivalSequence a = ArrivalSequence::bursty_eq27(x, 100.0);
  ASSERT_GE(a.count(), 10u);
  const double period = 1.0 / x;
  double prev_gap = 0.0;
  for (std::size_t m = 2; m <= 10; ++m) {
    const double gap = a.release(m) - a.release(m - 1);
    EXPECT_LT(gap, period + 1e-9);
    EXPECT_GE(gap, prev_gap - 1e-9);  // gaps are nondecreasing
    prev_gap = gap;
  }
  // The last observed gap is close to the period.
  const double last_gap = a.release(a.count()) - a.release(a.count() - 1);
  EXPECT_NEAR(last_gap, period, 0.05 * period);
}

TEST(ArrivalSequence, JitteredPeriodicStaysSorted) {
  Rng rng(17);
  const ArrivalSequence a =
      ArrivalSequence::jittered_periodic(2.0, 5.0, 40.0, rng);
  const auto& rel = a.releases();
  for (std::size_t i = 1; i < rel.size(); ++i) {
    EXPECT_LE(rel[i - 1], rel[i]);
  }
}

TEST(ArrivalSequence, BurstThenPeriodic) {
  const ArrivalSequence a =
      ArrivalSequence::burst_then_periodic(3, 0.5, 4.0, 20.0);
  ASSERT_GE(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.release(1), 0.0);
  EXPECT_DOUBLE_EQ(a.release(2), 0.5);
  EXPECT_DOUBLE_EQ(a.release(3), 1.0);
  // Steady phase: one period after the last burst release, so the head
  // burst stays exactly 3 arrivals.
  EXPECT_DOUBLE_EQ(a.release(4), 5.0);
  EXPECT_DOUBLE_EQ(a.release(5), 9.0);
  EXPECT_DOUBLE_EQ(a.min_inter_arrival(), 0.5);
}

TEST(ArrivalSequence, PoissonHasRoughlyRateArrivals) {
  Rng rng(23);
  const double rate = 2.0;
  const ArrivalSequence a = ArrivalSequence::poisson(rate, 500.0, rng);
  // ~1000 expected; allow 5 sigma.
  EXPECT_NEAR(static_cast<double>(a.count()), 1000.0, 160.0);
  const auto& rel = a.releases();
  for (std::size_t i = 1; i < rel.size(); ++i) {
    EXPECT_LE(rel[i - 1], rel[i]);
  }
  EXPECT_GE(rel.front(), 0.0);
  EXPECT_LE(rel.back(), 500.0);
}

TEST(ArrivalSequence, ToCurveMatchesDef1) {
  const ArrivalSequence a(std::vector<Time>{1.0, 1.0, 3.0});
  const PwlCurve f = a.to_curve(10.0);
  EXPECT_DOUBLE_EQ(f.eval(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f.eval(1.0), 2.0);
  EXPECT_DOUBLE_EQ(f.eval(2.9), 2.0);
  EXPECT_DOUBLE_EQ(f.eval(3.0), 3.0);
  // Eq. 3: f^{-1}(m) = t_m.
  EXPECT_DOUBLE_EQ(f.pseudo_inverse(1.0), 1.0);
  EXPECT_DOUBLE_EQ(f.pseudo_inverse(2.0), 1.0);
  EXPECT_DOUBLE_EQ(f.pseudo_inverse(3.0), 3.0);
}

TEST(ArrivalSequence, EmptySequence) {
  const ArrivalSequence a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.last_release(), 0.0);
  EXPECT_TRUE(std::isinf(a.min_inter_arrival()));
  EXPECT_TRUE(a.to_curve(5.0).approx_equal(PwlCurve::zero(5.0)));
}

}  // namespace
}  // namespace rta
