// Unit and property tests for the curve algebra (curve/algebra.hpp).
#include <gtest/gtest.h>

#include <cmath>

#include "curve/algebra.hpp"
#include "util/rng.hpp"

namespace rta {
namespace {

PwlCurve random_step(Rng& rng, Time horizon, int jumps) {
  std::vector<Time> times;
  for (int i = 0; i < jumps; ++i) times.push_back(rng.uniform(0.0, horizon));
  std::sort(times.begin(), times.end());
  return PwlCurve::step(horizon, times);
}

TEST(Algebra, AddPointwise) {
  const PwlCurve id = PwlCurve::identity(10.0);
  const PwlCurve st = PwlCurve::step(10.0, {2.0, 4.0});
  const PwlCurve sum = curve_add(id, st);
  EXPECT_DOUBLE_EQ(sum.eval(1.0), 1.0);
  EXPECT_DOUBLE_EQ(sum.eval(2.0), 3.0);
  EXPECT_DOUBLE_EQ(sum.eval_left(2.0), 2.0);
  EXPECT_DOUBLE_EQ(sum.eval(5.0), 7.0);
}

TEST(Algebra, SubCanDip) {
  const PwlCurve id = PwlCurve::identity(10.0);
  const PwlCurve st = PwlCurve::step(10.0, {2.0, 2.0, 2.0});
  const PwlCurve diff = curve_sub(id, st);
  EXPECT_DOUBLE_EQ(diff.eval(1.0), 1.0);
  EXPECT_DOUBLE_EQ(diff.eval(2.0), -1.0);
  EXPECT_FALSE(diff.is_nondecreasing());
}

TEST(Algebra, MinMaxInsertCrossings) {
  const PwlCurve id = PwlCurve::identity(10.0);
  const PwlCurve c = PwlCurve::constant(10.0, 4.0);
  const PwlCurve lo = curve_min(id, c);
  const PwlCurve hi = curve_max(id, c);
  EXPECT_DOUBLE_EQ(lo.eval(2.0), 2.0);
  EXPECT_DOUBLE_EQ(lo.eval(4.0), 4.0);
  EXPECT_DOUBLE_EQ(lo.eval(7.0), 4.0);
  EXPECT_DOUBLE_EQ(hi.eval(2.0), 4.0);
  EXPECT_DOUBLE_EQ(hi.eval(7.0), 7.0);
  // Exactness between grid points around the crossing.
  EXPECT_DOUBLE_EQ(lo.eval(3.999), 3.999);
  EXPECT_DOUBLE_EQ(hi.eval(4.001), 4.001);
}

TEST(Algebra, MinMaxIdentities) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const PwlCurve a = random_step(rng, 10.0, 5);
    const PwlCurve b = random_step(rng, 10.0, 5);
    const PwlCurve mn = curve_min(a, b);
    const PwlCurve mx = curve_max(a, b);
    // min + max == a + b pointwise.
    EXPECT_TRUE(curve_add(mn, mx).approx_equal(curve_add(a, b)));
    // min <= a <= max at sampled points.
    for (double t = 0.0; t <= 10.0; t += 0.37) {
      EXPECT_LE(mn.eval(t), a.eval(t) + 1e-9);
      EXPECT_GE(mx.eval(t), a.eval(t) - 1e-9);
    }
  }
}

TEST(Algebra, ScaleAndAddConstant) {
  const PwlCurve st = PwlCurve::step(10.0, {1.0, 2.0});
  const PwlCurve scaled = curve_scale(st, 2.5);
  EXPECT_DOUBLE_EQ(scaled.eval(1.5), 2.5);
  EXPECT_DOUBLE_EQ(scaled.eval(2.0), 5.0);
  const PwlCurve shifted = curve_add_constant(st, -1.0);
  EXPECT_DOUBLE_EQ(shifted.eval(0.0), -1.0);
  EXPECT_DOUBLE_EQ(shifted.eval(2.0), 1.0);
}

TEST(Algebra, ClampMin) {
  const PwlCurve c = curve_add_constant(PwlCurve::identity(10.0), -3.0);
  const PwlCurve clamped = curve_clamp_min(c, 0.0);
  EXPECT_DOUBLE_EQ(clamped.eval(1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamped.eval(3.0), 0.0);
  EXPECT_DOUBLE_EQ(clamped.eval(5.0), 2.0);
}

TEST(Algebra, ShiftRightDelaysCurve) {
  const PwlCurve st = PwlCurve::step(10.0, {1.0, 3.0});
  const PwlCurve sh = curve_shift_right(st, 2.0);
  EXPECT_DOUBLE_EQ(sh.eval(0.5), 0.0);
  EXPECT_DOUBLE_EQ(sh.eval(2.9), 0.0);
  EXPECT_DOUBLE_EQ(sh.eval(3.0), 1.0);
  EXPECT_DOUBLE_EQ(sh.eval(5.0), 2.0);
  EXPECT_DOUBLE_EQ(sh.horizon(), 10.0);
}

TEST(Algebra, ShiftRightZeroIsIdentity) {
  const PwlCurve st = PwlCurve::step(10.0, {1.0});
  EXPECT_TRUE(curve_shift_right(st, 0.0).approx_equal(st));
}

TEST(Algebra, ShiftRightBeyondHorizonIsConstant) {
  const PwlCurve st = PwlCurve::step(10.0, {1.0});
  const PwlCurve sh = curve_shift_right(st, 20.0);
  EXPECT_DOUBLE_EQ(sh.eval(10.0), 0.0);
}

TEST(Algebra, ShiftRightHoldsInitialValue) {
  const PwlCurve st = PwlCurve::step(10.0, {0.0, 4.0});  // value 1 at t=0
  const PwlCurve sh = curve_shift_right(st, 3.0);
  EXPECT_DOUBLE_EQ(sh.eval(0.0), 1.0);  // g(t) = f(0) for t < dt
  EXPECT_DOUBLE_EQ(sh.eval(2.9), 1.0);
  EXPECT_DOUBLE_EQ(sh.eval(7.0), 2.0);
}

TEST(Algebra, RunningMaxOfMonotoneIsIdentity) {
  const PwlCurve id = PwlCurve::identity(10.0);
  EXPECT_TRUE(curve_running_max(id).approx_equal(id));
  const PwlCurve st = PwlCurve::step(10.0, {1.0, 5.0});
  EXPECT_TRUE(curve_running_max(st).approx_equal(st));
}

TEST(Algebra, RunningMaxPlateausOverDips) {
  // f = t - step(2): dips at t=2 from 2 to 1, recovers by t=3.
  const PwlCurve f =
      curve_sub(PwlCurve::identity(10.0), PwlCurve::step(10.0, {2.0}));
  const PwlCurve m = curve_running_max(f);
  EXPECT_DOUBLE_EQ(m.eval(1.0), 1.0);
  EXPECT_DOUBLE_EQ(m.eval(2.0), 2.0);  // left limit kept
  EXPECT_DOUBLE_EQ(m.eval(2.5), 2.0);  // plateau
  EXPECT_DOUBLE_EQ(m.eval(3.0), 2.0);
  EXPECT_DOUBLE_EQ(m.eval(4.0), 3.0);  // follows f again
  EXPECT_TRUE(m.is_nondecreasing());
}

TEST(Algebra, RunningMaxIsSmallestMonotoneDominator) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const PwlCurve f = curve_sub(random_step(rng, 10.0, 6),
                                 random_step(rng, 10.0, 6));
    const PwlCurve m = curve_running_max(f);
    EXPECT_TRUE(m.is_nondecreasing());
    for (double t = 0.0; t <= 10.0; t += 0.31) {
      EXPECT_GE(m.eval(t) + 1e-9, f.eval(t));
      EXPECT_GE(m.eval(t) + 1e-9, f.eval_left(t));
    }
  }
}

TEST(Algebra, RightRunningMinMirrorsRunningMax) {
  // Continuous zig-zag: rises to 3 at t=3, falls to 1 at t=5, rises to 4.
  const PwlCurve f({{0.0, 0.0, 0.0}, {3.0, 3.0, 3.0}, {5.0, 1.0, 1.0},
                    {10.0, 4.0, 4.0}});
  const PwlCurve r = curve_right_running_min(f);
  EXPECT_TRUE(r.is_nondecreasing());
  EXPECT_DOUBLE_EQ(r.eval(0.0), 0.0);
  EXPECT_DOUBLE_EQ(r.eval(2.0), 1.0);   // min over [2,10] is the dip
  EXPECT_DOUBLE_EQ(r.eval(5.0), 1.0);
  EXPECT_DOUBLE_EQ(r.eval(7.0), f.eval(7.0));
  for (double t = 0.0; t <= 10.0; t += 0.13) {
    EXPECT_LE(r.eval(t), f.eval(t) + 1e-9);
  }
}

TEST(Algebra, SumOfCurves) {
  std::vector<PwlCurve> cs = {PwlCurve::step(5.0, {1.0}),
                              PwlCurve::step(5.0, {2.0}),
                              PwlCurve::step(5.0, {3.0})};
  const PwlCurve s = curve_sum(cs, 5.0);
  EXPECT_DOUBLE_EQ(s.eval(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.eval(2.5), 2.0);
  EXPECT_DOUBLE_EQ(s.eval(4.0), 3.0);
  EXPECT_TRUE(curve_sum({}, 5.0).approx_equal(PwlCurve::zero(5.0)));
}

TEST(Algebra, FloorDivCountsCompletions) {
  // S(t) = t: with tau = 2, completions at t = 2, 4, 6, 8, 10.
  const PwlCurve dep = curve_floor_div(PwlCurve::identity(10.0), 2.0);
  EXPECT_DOUBLE_EQ(dep.eval(1.9), 0.0);
  EXPECT_DOUBLE_EQ(dep.eval(2.0), 1.0);
  EXPECT_DOUBLE_EQ(dep.eval(9.99), 4.0);
  EXPECT_DOUBLE_EQ(dep.eval(10.0), 5.0);
  EXPECT_DOUBLE_EQ(dep.pseudo_inverse(3.0), 6.0);
}

TEST(Algebra, FloorDivToleratesEpsilon) {
  // S reaches 2*tau minus epsilon: the tolerant floor still counts 2.
  const PwlCurve s({{0.0, 0.0, 0.0}, {5.0, 4.0 - 1e-11, 4.0 - 1e-11},
                    {10.0, 4.0 - 1e-11, 4.0 - 1e-11}});
  const PwlCurve dep = curve_floor_div(s, 2.0);
  EXPECT_DOUBLE_EQ(dep.end_value(), 2.0);
}

TEST(Algebra, FirstCrossingOnMonotoneMatchesPseudoInverse) {
  const PwlCurve st = PwlCurve::step(10.0, {1.0, 4.0, 7.0});
  for (double y : {0.5, 1.0, 2.0, 3.0}) {
    EXPECT_DOUBLE_EQ(curve_first_crossing(st, y), st.pseudo_inverse(y));
  }
  EXPECT_TRUE(std::isinf(curve_first_crossing(st, 4.0)));
}

TEST(Algebra, FirstCrossingOnDippingCurve) {
  // Rises to 3 at t=3, dips to 1, rises to 4 by t=10.
  const PwlCurve f({{0.0, 0.0, 0.0}, {3.0, 3.0, 3.0}, {5.0, 1.0, 1.0},
                    {10.0, 4.0, 4.0}});
  EXPECT_DOUBLE_EQ(curve_first_crossing(f, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(curve_first_crossing(f, 3.0), 3.0);
  EXPECT_NEAR(curve_first_crossing(f, 3.5), 5.0 + 2.5 / 0.6, 1e-9);
}

TEST(Algebra, CrossingCountsMatchFloorDivOnMonotone) {
  const PwlCurve s = PwlCurve::identity(10.0);
  const PwlCurve a = curve_crossing_counts(s, 2.0);
  const PwlCurve b = curve_floor_div(s, 2.0);
  EXPECT_TRUE(a.approx_equal(b));
}

}  // namespace
}  // namespace rta
