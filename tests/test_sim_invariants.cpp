// The simulator watchdog: legal-schedule invariants on hand-built and
// randomized runs, plus detection of deliberately corrupted traces.
#include <gtest/gtest.h>

#include "analysis/result.hpp"
#include "model/priority.hpp"
#include "sim/invariants.hpp"
#include "sim/simulator.hpp"
#include "workload/jobshop.hpp"

namespace rta {
namespace {

Job make_job(const std::string& name, double deadline,
             std::vector<Subjob> chain, std::vector<Time> releases) {
  Job j;
  j.name = name;
  j.deadline = deadline;
  j.chain = std::move(chain);
  j.arrivals = ArrivalSequence(std::move(releases));
  return j;
}

TEST(SimInvariants, CleanOnHandBuiltSpp) {
  System sys(1, SchedulerKind::kSpp);
  sys.add_job(make_job("Low", 10.0, {{0, 4.0, 2}}, {0.0}));
  sys.add_job(make_job("High", 10.0, {{0, 1.0, 1}}, {1.0}));
  const SimResult r = simulate(sys, 20.0);
  EXPECT_TRUE(check_simulation_invariants(sys, r).empty());
}

TEST(SimInvariants, CleanOnHandBuiltSpnpAndFcfs) {
  for (SchedulerKind kind : {SchedulerKind::kSpnp, SchedulerKind::kFcfs}) {
    System sys(1, kind);
    sys.add_job(make_job("A", 20.0, {{0, 2.0, 1}}, {0.0, 3.0, 6.0}));
    sys.add_job(make_job("B", 20.0, {{0, 1.5, 2}}, {0.5, 5.0}));
    const SimResult r = simulate(sys, 40.0);
    const auto v = check_simulation_invariants(sys, r);
    EXPECT_TRUE(v.empty()) << to_string(kind) << ": " << v.front();
  }
}

TEST(SimInvariants, CleanOnRandomShops) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (SchedulerKind kind : {SchedulerKind::kSpp, SchedulerKind::kSpnp,
                               SchedulerKind::kFcfs}) {
      JobShopConfig cfg;
      cfg.stages = 3;
      cfg.processors_per_stage = 2;
      cfg.jobs = 5;
      cfg.pattern = (seed % 2) ? ArrivalPattern::kPeriodic
                               : ArrivalPattern::kAperiodic;
      cfg.utilization = 0.6;
      cfg.window_periods = 5.0;
      cfg.min_rate = 0.15;
      cfg.scheduler = kind;
      Rng rng(seed);
      System sys = generate_jobshop(cfg, rng);
      assign_proportional_deadline_monotonic(sys);
      const SimResult r =
          simulate(sys, default_horizon(sys, AnalysisConfig{}));
      const auto v = check_simulation_invariants(sys, r);
      EXPECT_TRUE(v.empty())
          << to_string(kind) << " seed " << seed << ": " << v.front();
    }
  }
}

TEST(SimInvariants, DetectsIdleInjection) {
  // Corrupt a clean run by deleting a service segment: the work-conservation
  // and accounting checks must fire.
  System sys(1, SchedulerKind::kSpp);
  sys.add_job(make_job("A", 10.0, {{0, 2.0, 1}}, {0.0, 4.0}));
  SimResult r = simulate(sys, 20.0);
  ASSERT_TRUE(check_simulation_invariants(sys, r).empty());
  r.segments[0][0].pop_back();
  EXPECT_FALSE(check_simulation_invariants(sys, r).empty());
}

TEST(SimInvariants, DetectsPriorityInversion) {
  // Swap the priorities in the MODEL after simulating: the recorded schedule
  // now violates SPP priority compliance.
  System sys(1, SchedulerKind::kSpp);
  sys.add_job(make_job("A", 10.0, {{0, 2.0, 1}}, {0.0}));
  sys.add_job(make_job("B", 10.0, {{0, 2.0, 2}}, {0.0}));
  const SimResult r = simulate(sys, 20.0);
  ASSERT_TRUE(check_simulation_invariants(sys, r).empty());
  System swapped = sys;
  swapped.subjob({0, 0}).priority = 2;
  swapped.subjob({1, 0}).priority = 1;
  EXPECT_FALSE(check_simulation_invariants(swapped, r).empty());
}

TEST(SimInvariants, DetectsFcfsOrderViolation) {
  // A SPP schedule (which may overtake) checked against a FCFS model.
  System sys(1, SchedulerKind::kSpp);
  sys.add_job(make_job("Late", 20.0, {{0, 1.0, 1}}, {0.5}));   // overtakes
  sys.add_job(make_job("Early", 20.0, {{0, 4.0, 2}}, {0.0}));
  const SimResult r = simulate(sys, 20.0);
  System as_fcfs = sys;
  as_fcfs.set_scheduler(0, SchedulerKind::kFcfs);
  const auto v = check_simulation_invariants(as_fcfs, r);
  EXPECT_FALSE(v.empty());
}

TEST(SimInvariants, IncompleteRunsAreStillLegal) {
  // Truncated horizon: unfinished instances must not trigger violations.
  System sys(1, SchedulerKind::kSpnp);
  sys.add_job(make_job("A", 10.0, {{0, 5.0, 1}}, {0.0, 1.0}));
  const SimResult r = simulate(sys, 6.0);
  EXPECT_FALSE(r.all_completed);
  const auto v = check_simulation_invariants(sys, r);
  EXPECT_TRUE(v.empty()) << v.front();
}

}  // namespace
}  // namespace rta
