// Unit tests for priority assignment (Eq. 24 and alternatives).
#include <gtest/gtest.h>

#include "model/priority.hpp"

namespace rta {
namespace {

System make_shop() {
  System sys(2, SchedulerKind::kSpp);
  // Job A: deadline 10, chain exec 1 + 3 -> sub-deadlines 2.5 and 7.5.
  Job a;
  a.name = "A";
  a.deadline = 10.0;
  a.chain = {{0, 1.0, 0}, {1, 3.0, 0}};
  a.arrivals = ArrivalSequence::periodic(8.0, 30.0);
  sys.add_job(std::move(a));
  // Job B: deadline 6, chain exec 2 + 1 -> sub-deadlines 4 and 2.
  Job b;
  b.name = "B";
  b.deadline = 6.0;
  b.chain = {{0, 2.0, 0}, {1, 1.0, 0}};
  b.arrivals = ArrivalSequence::periodic(12.0, 30.0);
  sys.add_job(std::move(b));
  return sys;
}

TEST(Priority, ProportionalSubdeadlineEq24) {
  const System sys = make_shop();
  EXPECT_DOUBLE_EQ(proportional_subdeadline(sys.job(0), 0), 2.5);
  EXPECT_DOUBLE_EQ(proportional_subdeadline(sys.job(0), 1), 7.5);
  EXPECT_DOUBLE_EQ(proportional_subdeadline(sys.job(1), 0), 4.0);
  EXPECT_DOUBLE_EQ(proportional_subdeadline(sys.job(1), 1), 2.0);
}

TEST(Priority, ProportionalDeadlineMonotonicAssignment) {
  System sys = make_shop();
  assign_proportional_deadline_monotonic(sys);
  // P0: A hop0 (2.5) beats B hop0 (4.0).
  EXPECT_EQ(sys.subjob({0, 0}).priority, 1);
  EXPECT_EQ(sys.subjob({1, 0}).priority, 2);
  // P1: B hop1 (2.0) beats A hop1 (7.5).
  EXPECT_EQ(sys.subjob({1, 1}).priority, 1);
  EXPECT_EQ(sys.subjob({0, 1}).priority, 2);
  EXPECT_TRUE(sys.validate().empty());
}

TEST(Priority, DeadlineMonotonicUsesJobDeadline) {
  System sys = make_shop();
  assign_deadline_monotonic(sys);
  // B's deadline (6) < A's (10): B wins on both processors.
  EXPECT_EQ(sys.subjob({1, 0}).priority, 1);
  EXPECT_EQ(sys.subjob({1, 1}).priority, 1);
  EXPECT_EQ(sys.subjob({0, 0}).priority, 2);
  EXPECT_EQ(sys.subjob({0, 1}).priority, 2);
}

TEST(Priority, RateMonotonicUsesMinInterArrival) {
  System sys = make_shop();
  assign_rate_monotonic(sys);
  // A's period (8) < B's (12): A wins everywhere.
  EXPECT_EQ(sys.subjob({0, 0}).priority, 1);
  EXPECT_EQ(sys.subjob({0, 1}).priority, 1);
}

TEST(Priority, ExplicitJobRank) {
  System sys = make_shop();
  assign_by_job_rank(sys, {2.0, 1.0});
  EXPECT_EQ(sys.subjob({1, 0}).priority, 1);
  EXPECT_EQ(sys.subjob({0, 0}).priority, 2);
}

TEST(Priority, TiesBreakDeterministically) {
  System sys(1, SchedulerKind::kSpp);
  for (int i = 0; i < 3; ++i) {
    Job j;
    j.name = "J" + std::to_string(i);
    j.deadline = 5.0;
    j.chain = {{0, 1.0, 0}};
    j.arrivals = ArrivalSequence::periodic(5.0, 20.0);
    sys.add_job(std::move(j));
  }
  assign_deadline_monotonic(sys);  // all deadlines equal -> tie on job index
  EXPECT_EQ(sys.subjob({0, 0}).priority, 1);
  EXPECT_EQ(sys.subjob({1, 0}).priority, 2);
  EXPECT_EQ(sys.subjob({2, 0}).priority, 3);
  EXPECT_TRUE(sys.validate().empty());
}

}  // namespace
}  // namespace rta
