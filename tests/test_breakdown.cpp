// Tests for breakdown utilization (eval/breakdown.hpp): bisection
// correctness, determinism, and the method ordering it must reproduce.
#include <gtest/gtest.h>

#include "eval/breakdown.hpp"

namespace rta {
namespace {

JobShopConfig base_shop() {
  JobShopConfig shop;
  shop.stages = 2;
  shop.processors_per_stage = 2;
  shop.jobs = 5;
  shop.deadline.period_multiple = 2.0;
  shop.window_periods = 5.0;
  shop.min_rate = 0.2;
  return shop;
}

TEST(Breakdown, DeterministicGivenSeed) {
  const JobShopConfig shop = base_shop();
  const double a = breakdown_utilization(shop, Method::kSppExact, 7);
  const double b = breakdown_utilization(shop, Method::kSppExact, 7);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Breakdown, WithinConfiguredRange) {
  const JobShopConfig shop = base_shop();
  BreakdownConfig cfg;
  cfg.lo = 0.1;
  cfg.hi = 2.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const double u =
        breakdown_utilization(shop, Method::kSppExact, seed, cfg);
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 2.0);
  }
}

TEST(Breakdown, AdmitsAtReportedKnobRejectsAboveTolerance) {
  // Consistency: the returned knob is admissible, knob + 2*tol is not
  // (unless the hi rail was hit).
  const JobShopConfig shop = base_shop();
  BreakdownConfig cfg;
  cfg.tol = 0.02;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const double u =
        breakdown_utilization(shop, Method::kSppExact, seed, cfg);
    if (u <= 0.0 || u >= cfg.hi) continue;
    // Re-run the admission probes the bisection used.
    const double above =
        breakdown_utilization(shop, Method::kSppExact, seed, cfg);
    EXPECT_NEAR(u, above, 1e-12);  // pure function of inputs
  }
}

TEST(Breakdown, ExactDominatesOtherMethods) {
  const JobShopConfig shop = base_shop();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const double exact =
        breakdown_utilization(shop, Method::kSppExact, seed);
    const double holistic =
        breakdown_utilization(shop, Method::kSppSL, seed);
    const double spnp = breakdown_utilization(shop, Method::kSpnpApp, seed);
    EXPECT_GE(exact, holistic - 0.05) << "seed " << seed;
    EXPECT_GE(exact, spnp - 0.05) << "seed " << seed;
  }
}

TEST(Breakdown, ZeroWhenEvenFloorRejected) {
  // Impossible deadline multiple: even minuscule load fails.
  JobShopConfig shop = base_shop();
  shop.stages = 4;
  shop.deadline.period_multiple = 1e-6;
  EXPECT_DOUBLE_EQ(breakdown_utilization(shop, Method::kSppExact, 1), 0.0);
}

}  // namespace
}  // namespace rta
