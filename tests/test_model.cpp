// Unit tests for the system model: topology queries, blocking times (Eq. 15),
// validation, and dependency-cycle detection (§6 loops).
#include <gtest/gtest.h>

#include "model/system.hpp"

namespace rta {
namespace {

System two_proc_two_job_system() {
  System sys(2, SchedulerKind::kSpp);
  Job a;
  a.name = "A";
  a.deadline = 10.0;
  a.chain = {{0, 1.0, 1}, {1, 2.0, 2}};
  a.arrivals = ArrivalSequence::periodic(5.0, 20.0);
  sys.add_job(std::move(a));
  Job b;
  b.name = "B";
  b.deadline = 12.0;
  b.chain = {{0, 0.5, 2}, {1, 1.5, 1}};
  b.arrivals = ArrivalSequence::periodic(6.0, 20.0);
  sys.add_job(std::move(b));
  return sys;
}

TEST(System, SubjobsOnProcessor) {
  const System sys = two_proc_two_job_system();
  const auto on0 = sys.subjobs_on(0);
  ASSERT_EQ(on0.size(), 2u);
  EXPECT_EQ(on0[0], (SubjobRef{0, 0}));
  EXPECT_EQ(on0[1], (SubjobRef{1, 0}));
  const auto on1 = sys.subjobs_on(1);
  ASSERT_EQ(on1.size(), 2u);
  EXPECT_EQ(on1[0], (SubjobRef{0, 1}));
}

TEST(System, HigherPriorityQuery) {
  const System sys = two_proc_two_job_system();
  const auto hp = sys.higher_priority_on(0, 2);
  ASSERT_EQ(hp.size(), 1u);
  EXPECT_EQ(hp[0], (SubjobRef{0, 0}));
  EXPECT_TRUE(sys.higher_priority_on(0, 1).empty());
}

TEST(System, BlockingTimeEq15) {
  const System sys = two_proc_two_job_system();
  // On P0, job A hop 0 (prio 1) can be blocked by job B hop 0 (prio 2,
  // tau = 0.5); B's subjob has nothing below it.
  EXPECT_DOUBLE_EQ(sys.blocking_time({0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(sys.blocking_time({1, 0}), 0.0);
  // On P1, B hop 1 has priority 1, blocked by A hop 1 (tau = 2).
  EXPECT_DOUBLE_EQ(sys.blocking_time({1, 1}), 2.0);
}

TEST(System, ValidSystemPassesValidation) {
  EXPECT_TRUE(two_proc_two_job_system().validate().empty());
}

TEST(System, ValidationCatchesEmptyChain) {
  System sys(1);
  Job j;
  j.name = "bad";
  j.deadline = 1.0;
  j.arrivals = ArrivalSequence(std::vector<Time>{0.0});
  sys.add_job(std::move(j));
  EXPECT_FALSE(sys.validate().empty());
}

TEST(System, ValidationCatchesBadProcessorAndExecTime) {
  System sys(1);
  Job j;
  j.name = "bad";
  j.deadline = 1.0;
  j.chain = {{5, -1.0, 1}};
  j.arrivals = ArrivalSequence(std::vector<Time>{0.0});
  sys.add_job(std::move(j));
  EXPECT_GE(sys.validate().size(), 2u);
}

TEST(System, ValidationCatchesDuplicatePriorities) {
  System sys = two_proc_two_job_system();
  sys.subjob({1, 0}).priority = 1;  // clashes with A hop 0 on P0
  EXPECT_FALSE(sys.validate().empty());
  // FCFS processors do not need unique priorities.
  sys.set_scheduler(0, SchedulerKind::kFcfs);
  EXPECT_TRUE(sys.validate().empty());
}

TEST(System, ValidationCatchesNoArrivalsAndNonPositiveDeadline) {
  System sys(1);
  Job j;
  j.name = "bad";
  j.deadline = 0.0;
  j.chain = {{0, 1.0, 1}};
  sys.add_job(std::move(j));
  EXPECT_GE(sys.validate().size(), 2u);
}

TEST(System, UtilizationEstimate) {
  const System sys = two_proc_two_job_system();
  // Window 20: A releases at 0,5,10,15,20 (5 instances), B at 0,6,12,18 (4).
  const auto util = sys.utilization_estimate(20.0);
  EXPECT_NEAR(util[0], (5 * 1.0 + 4 * 0.5) / 20.0, 1e-12);
  EXPECT_NEAR(util[1], (5 * 2.0 + 4 * 1.5) / 20.0, 1e-12);
}

TEST(System, FeedForwardShopIsAcyclic) {
  EXPECT_TRUE(two_proc_two_job_system().dependency_graph_is_acyclic());
}

TEST(System, LogicalLoopIsDetected) {
  // The paper's §6 example: T_k's hop j-1 shares a processor with a
  // higher-priority T_n hop i, and T_n's hop i-1 shares a processor with a
  // higher-priority T_k hop j.
  System sys(2, SchedulerKind::kSpp);
  Job k;
  k.name = "Tk";
  k.deadline = 10.0;
  k.chain = {{0, 1.0, 2}, {1, 1.0, 1}};  // hop j-1 on P0 (lo), hop j on P1 (hi)
  k.arrivals = ArrivalSequence(std::vector<Time>{0.0});
  sys.add_job(std::move(k));
  Job n;
  n.name = "Tn";
  n.deadline = 10.0;
  n.chain = {{1, 1.0, 2}, {0, 1.0, 1}};  // hop i-1 on P1 (lo), hop i on P0 (hi)
  n.arrivals = ArrivalSequence(std::vector<Time>{0.0});
  sys.add_job(std::move(n));
  EXPECT_FALSE(sys.dependency_graph_is_acyclic());
}

TEST(System, PhysicalLoopIsDetectedUnderFcfs) {
  // A job visiting the same FCFS processor twice couples with itself.
  System sys(2, SchedulerKind::kFcfs);
  Job j;
  j.name = "loop";
  j.deadline = 10.0;
  j.chain = {{0, 1.0, 0}, {1, 1.0, 0}, {0, 1.0, 0}};
  j.arrivals = ArrivalSequence(std::vector<Time>{0.0});
  sys.add_job(std::move(j));
  EXPECT_FALSE(sys.dependency_graph_is_acyclic());
}

TEST(System, SchedulerKindNames) {
  EXPECT_STREQ(to_string(SchedulerKind::kSpp), "SPP");
  EXPECT_STREQ(to_string(SchedulerKind::kSpnp), "SPNP");
  EXPECT_STREQ(to_string(SchedulerKind::kFcfs), "FCFS");
}

}  // namespace
}  // namespace rta
