// Tests for the fixed-point analyzer on cyclic topologies (the paper's §6
// extension) and its agreement with BoundsAnalyzer on acyclic systems.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bounds.hpp"
#include "analysis/iterative.hpp"
#include "sim/simulator.hpp"
#include "model/priority.hpp"
#include "workload/jobshop.hpp"

namespace rta {
namespace {

Job make_job(const std::string& name, double deadline,
             std::vector<Subjob> chain, std::vector<Time> releases) {
  Job j;
  j.name = name;
  j.deadline = deadline;
  j.chain = std::move(chain);
  j.arrivals = ArrivalSequence(std::move(releases));
  return j;
}

TEST(Iterative, MatchesBoundsAnalyzerOnAcyclicSystems) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    JobShopConfig cfg;
    cfg.stages = 2;
    cfg.processors_per_stage = 2;
    cfg.jobs = 4;
    cfg.utilization = 0.5;
    cfg.window_periods = 5.0;
    cfg.scheduler = SchedulerKind::kSpnp;
    cfg.min_rate = 0.2;
    Rng rng(seed);
    System sys = generate_jobshop(cfg, rng);
    assign_proportional_deadline_monotonic(sys);

    const AnalysisResult direct = BoundsAnalyzer().analyze(sys);
    const AnalysisResult iterative = IterativeBoundsAnalyzer().analyze(sys);
    ASSERT_TRUE(direct.ok && iterative.ok);
    for (int k = 0; k < sys.job_count(); ++k) {
      if (std::isinf(direct.jobs[k].wcrt)) {
        EXPECT_TRUE(std::isinf(iterative.jobs[k].wcrt));
      } else {
        EXPECT_NEAR(iterative.jobs[k].wcrt, direct.jobs[k].wcrt, 1e-6)
            << "seed " << seed << " job " << k;
      }
    }
  }
}

TEST(Iterative, HandlesLogicalLoop) {
  // The §6 counterexample that the acyclic analyzers reject.
  System sys(2, SchedulerKind::kSpnp);
  sys.add_job(make_job("Tk", 30.0, {{0, 1.0, 2}, {1, 1.0, 1}}, {0.0, 10.0}));
  sys.add_job(make_job("Tn", 30.0, {{1, 1.0, 2}, {0, 1.0, 1}}, {0.0, 10.0}));
  ASSERT_FALSE(BoundsAnalyzer().analyze(sys).ok);

  const AnalysisResult r = IterativeBoundsAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  const SimResult s = simulate(sys, r.horizon);
  ASSERT_TRUE(s.all_completed);
  for (int k = 0; k < 2; ++k) {
    ASSERT_TRUE(std::isfinite(r.jobs[k].wcrt)) << "job " << k;
    EXPECT_GE(r.jobs[k].wcrt, s.worst_response[k] - 1e-9) << "job " << k;
  }
}

TEST(Iterative, HandlesPhysicalLoop) {
  // A job visiting processor 0 twice (visit -> other proc -> revisit).
  System sys(2, SchedulerKind::kSpnp);
  sys.add_job(make_job("Loop", 30.0, {{0, 1.0, 1}, {1, 2.0, 1}, {0, 1.0, 2}},
                       {0.0, 8.0}));
  sys.add_job(make_job("Other", 30.0, {{1, 1.0, 2}}, {1.0, 9.0}));
  const AnalysisResult r = IterativeBoundsAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  const SimResult s = simulate(sys, r.horizon);
  ASSERT_TRUE(s.all_completed);
  for (int k = 0; k < 2; ++k) {
    ASSERT_TRUE(std::isfinite(r.jobs[k].wcrt)) << "job " << k;
    EXPECT_GE(r.jobs[k].wcrt, s.worst_response[k] - 1e-9) << "job " << k;
  }
}

TEST(Iterative, PhysicalLoopUnderFcfs) {
  System sys(2, SchedulerKind::kFcfs);
  sys.add_job(make_job("Loop", 40.0, {{0, 1.0, 0}, {1, 2.0, 0}, {0, 1.5, 0}},
                       {0.0, 10.0}));
  sys.add_job(make_job("Other", 40.0, {{0, 0.5, 0}}, {0.5, 10.5}));
  const AnalysisResult r = IterativeBoundsAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  const SimResult s = simulate(sys, r.horizon);
  ASSERT_TRUE(s.all_completed);
  for (int k = 0; k < 2; ++k) {
    ASSERT_TRUE(std::isfinite(r.jobs[k].wcrt)) << "job " << k;
    EXPECT_GE(r.jobs[k].wcrt, s.worst_response[k] - 1e-9) << "job " << k;
  }
}

TEST(Iterative, ConvergesWithinIterationBudget) {
  AnalysisConfig cfg;
  cfg.max_iterations = 32;
  IterativeBoundsAnalyzer analyzer(cfg);
  System sys(2, SchedulerKind::kSpnp);
  sys.add_job(make_job("Tk", 30.0, {{0, 1.0, 2}, {1, 1.0, 1}}, {0.0, 10.0}));
  sys.add_job(make_job("Tn", 30.0, {{1, 1.0, 2}, {0, 1.0, 1}}, {0.0, 10.0}));
  const AnalysisResult r = analyzer.analyze(sys);
  ASSERT_TRUE(r.ok);
  EXPECT_LE(analyzer.last_iterations(), 32);
  EXPECT_GE(analyzer.last_iterations(), 1);
}

TEST(Iterative, RefinementIsMonotone) {
  // More iterations can only tighten (or keep) the bounds: run with caps 1
  // and 16 and compare.
  System sys(2, SchedulerKind::kSpnp);
  sys.add_job(make_job("Tk", 30.0, {{0, 1.0, 2}, {1, 1.0, 1}}, {0.0, 10.0}));
  sys.add_job(make_job("Tn", 30.0, {{1, 1.0, 2}, {0, 1.0, 1}}, {0.0, 10.0}));
  AnalysisConfig one;
  one.max_iterations = 1;
  AnalysisConfig many;
  many.max_iterations = 16;
  const AnalysisResult r1 = IterativeBoundsAnalyzer(one).analyze(sys);
  const AnalysisResult r16 = IterativeBoundsAnalyzer(many).analyze(sys);
  ASSERT_TRUE(r1.ok && r16.ok);
  for (int k = 0; k < 2; ++k) {
    if (std::isinf(r1.jobs[k].wcrt)) continue;
    EXPECT_LE(r16.jobs[k].wcrt, r1.jobs[k].wcrt + 1e-6);
  }
}

}  // namespace
}  // namespace rta
