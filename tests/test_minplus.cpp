// Tests for the min-plus operators: algebraic identities and known closed
// forms from the network-calculus literature.
#include <gtest/gtest.h>

#include "curve/algebra.hpp"
#include "curve/minplus.hpp"
#include "util/rng.hpp"

namespace rta {
namespace {

PwlCurve leaky(double burst, double rate, Time h) {
  return PwlCurve({{0.0, burst, burst}, {h, burst + rate * h,
                                         burst + rate * h}});
}

PwlCurve rate_latency(double latency, double rate, Time h) {
  return PwlCurve({{0.0, 0.0, 0.0}, {latency, 0.0, 0.0},
                   {h, rate * (h - latency), rate * (h - latency)}});
}

TEST(MinPlus, ConvolutionWithZeroDelayServer) {
  // f (*) identity-like zero curve: (f (*) 0)(t) = min over s of f(s) + 0 =
  // f(0) won't hold for general f; but convolution with the zero CURVE is
  // the running minimum shifted... use the classical pair instead:
  // two rate-latency servers compose: (L1,R1) (*) (L2,R2) =
  // (L1+L2, min(R1,R2)).
  const Time h = 20.0;
  const PwlCurve b1 = rate_latency(2.0, 1.0, h);
  const PwlCurve b2 = rate_latency(3.0, 0.5, h);
  const PwlCurve composed = min_plus_convolution(b1, b2);
  const PwlCurve expect = rate_latency(5.0, 0.5, h);
  for (double t : {0.0, 4.9, 5.0, 6.0, 10.0, 20.0}) {
    EXPECT_NEAR(composed.eval(t), expect.eval(t), 1e-9) << "t=" << t;
  }
}

TEST(MinPlus, ConvolutionOfLeakyBuckets) {
  // (b1 + r1 t) (*) (b2 + r2 t) = b1 + b2 + min(r1, r2) t  for t > 0 (the
  // burst terms add, the slower rate dominates).
  const Time h = 10.0;
  const PwlCurve f = leaky(2.0, 1.0, h);
  const PwlCurve g = leaky(1.0, 0.25, h);
  const PwlCurve c = min_plus_convolution(f, g);
  for (double t : {0.0, 1.0, 4.0, 10.0}) {
    EXPECT_NEAR(c.eval(t), 3.0 + 0.25 * t, 1e-9) << "t=" << t;
  }
}

TEST(MinPlus, ConvolutionIsCommutative) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Time> j1, j2;
    for (int i = 0; i < 5; ++i) {
      j1.push_back(rng.uniform(0.0, 10.0));
      j2.push_back(rng.uniform(0.0, 10.0));
    }
    std::sort(j1.begin(), j1.end());
    std::sort(j2.begin(), j2.end());
    const PwlCurve f = PwlCurve::step(10.0, j1);
    const PwlCurve g = PwlCurve::step(10.0, j2);
    const PwlCurve fg = min_plus_convolution(f, g);
    const PwlCurve gf = min_plus_convolution(g, f);
    EXPECT_LE(fg.max_abs_difference(gf), 1e-9);
  }
}

TEST(MinPlus, ConvolutionDominatedByOperandsPlusOrigin) {
  // (f (*) g)(t) <= f(t) + g(0) and <= f(0) + g(t).
  Rng rng(9);
  std::vector<Time> j;
  for (int i = 0; i < 6; ++i) j.push_back(rng.uniform(0.0, 10.0));
  std::sort(j.begin(), j.end());
  const PwlCurve f = PwlCurve::step(10.0, j);
  const PwlCurve g = leaky(1.0, 0.5, 10.0);
  const PwlCurve c = min_plus_convolution(f, g);
  for (double t = 0.0; t <= 10.0; t += 0.21) {
    EXPECT_LE(c.eval(t), f.eval(t) + g.eval(0.0) + 1e-9);
    EXPECT_LE(c.eval(t), f.eval(0.0) + g.eval(t) + 1e-9);
  }
}

TEST(MinPlus, DeconvolutionOutputEnvelope) {
  // Output envelope of a rate-latency server: alpha (/) beta =
  // alpha(t + L) for leaky alpha when R >= r: b + r(t + L).
  const Time h = 40.0;
  const PwlCurve alpha = leaky(2.0, 0.5, h);
  const PwlCurve beta = rate_latency(3.0, 1.0, h);
  const PwlCurve out = min_plus_deconvolution(alpha, beta);
  for (double t : {0.0, 1.0, 10.0, 30.0}) {
    EXPECT_NEAR(out.eval(t), 2.0 + 0.5 * (t + 3.0), 1e-9) << "t=" << t;
  }
}

TEST(MinPlus, DeconvolutionDominatesOriginal) {
  // f (/) g >= f - g(0) pointwise (u = 0 term).
  const PwlCurve f = PwlCurve::step(10.0, {1.0, 2.0, 7.0});
  const PwlCurve g = rate_latency(1.0, 1.0, 10.0);
  const PwlCurve d = min_plus_deconvolution(f, g);
  for (double t = 0.0; t <= 10.0; t += 0.37) {
    EXPECT_GE(d.eval(t) + 1e-9, f.eval(t) - g.eval(0.0));
  }
}

TEST(MinPlus, ConvolutionThenDeconvolutionSandwich) {
  // (f (*) g) (/) g >= f (*) g ... and <= f? The classical sandwich:
  // f (*) g <= f, and deconvolution undoes at most the smoothing:
  // ((f (*) g) (/) g) >= f (*) g.
  const Time h = 20.0;
  const PwlCurve f = leaky(3.0, 0.75, h);
  const PwlCurve g = rate_latency(2.0, 1.0, h);
  const PwlCurve conv = min_plus_convolution(f, g);
  const PwlCurve back = min_plus_deconvolution(conv, g);
  for (double t = 0.0; t <= h / 2; t += 0.5) {
    EXPECT_GE(back.eval(t) + 1e-9, conv.eval(t));
  }
}

}  // namespace
}  // namespace rta
