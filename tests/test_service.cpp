// Differential harness for the incremental admission service: long random
// admit / remove / what-if sequences through one AdmissionSession must
// produce decisions BIT-IDENTICAL to a fresh, serial, uncached full analysis
// of the candidate system at every step -- the session's retained curves and
// dirty-set propagation are a latency optimization, never a result change
// (admission_session.hpp states the contract). Exact double equality, as in
// test_differential_engine.cpp.
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "model/priority.hpp"
#include "service/admission_session.hpp"
#include "util/rng.hpp"
#include "workload/jobshop.hpp"

namespace rta {
namespace {

using service::AdmissionSession;
using service::Decision;
using service::SessionConfig;

std::vector<int> thread_counts() {
  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<int> counts = {1};
  if (hw > 1) counts.push_back(static_cast<int>(hw));
  return counts;
}

System random_base(Rng& rng, SchedulerKind scheduler, bool mixed) {
  JobShopConfig cfg;
  cfg.stages = static_cast<std::size_t>(rng.uniform_int(1, 2));
  cfg.processors_per_stage = static_cast<std::size_t>(rng.uniform_int(1, 2));
  cfg.jobs = static_cast<std::size_t>(rng.uniform_int(2, 4));
  cfg.pattern = rng.uniform_int(0, 1) == 0 ? ArrivalPattern::kPeriodic
                                           : ArrivalPattern::kAperiodic;
  cfg.utilization = rng.uniform(0.3, 0.7);
  cfg.window_periods = 4.0;
  cfg.deadline.period_multiple = rng.uniform(2.0, 4.0);
  cfg.scheduler = scheduler;
  System system = generate_jobshop(cfg, rng);
  if (mixed) {
    // Heterogeneous mix: cycle the three schedulers across processors so
    // the dirty-set logic sees SPP, SPNP and FCFS coupling in one system.
    const SchedulerKind kinds[] = {SchedulerKind::kSpp, SchedulerKind::kSpnp,
                                   SchedulerKind::kFcfs};
    for (int p = 0; p < system.processor_count(); ++p) {
      system.set_scheduler(p, kinds[p % 3]);
    }
  }
  assign_proportional_deadline_monotonic(system);
  return system;
}

/// A light candidate job with 1-3 hops on random processors; priorities are
/// filled in by the session's lowest-priority policy.
Job random_job(Rng& rng, const System& base, int serial) {
  Job job;
  job.name = "cand" + std::to_string(serial);
  const int hops = rng.uniform_int(1, 3);
  double exec_total = 0.0;
  for (int h = 0; h < hops; ++h) {
    Subjob s;
    s.processor = rng.uniform_int(0, base.processor_count() - 1);
    s.exec_time = rng.uniform(0.02, 0.15);
    exec_total += s.exec_time;
    job.chain.push_back(s);
  }
  const Time period = rng.uniform(1.0, 4.0);
  const Time window = std::max<Time>(base.last_release(), 4.0 * period);
  job.arrivals =
      rng.uniform_int(0, 1) == 0
          ? ArrivalSequence::periodic(period, window)
          : ArrivalSequence::burst_then_periodic(2, 0.25 * period, period,
                                                 window);
  job.deadline = exec_total * rng.uniform(4.0, 20.0) + period;
  service::assign_lowest_priorities(base, job);
  return job;
}

void expect_bit_identical(const AnalysisResult& fresh,
                          const AnalysisResult& session,
                          const std::string& label) {
  ASSERT_EQ(fresh.ok, session.ok) << label;
  if (!fresh.ok) {
    EXPECT_EQ(fresh.error, session.error) << label;
    return;
  }
  ASSERT_EQ(fresh.jobs.size(), session.jobs.size()) << label;
  EXPECT_EQ(fresh.horizon, session.horizon) << label;
  for (std::size_t k = 0; k < fresh.jobs.size(); ++k) {
    const JobReport& a = fresh.jobs[k];
    const JobReport& b = session.jobs[k];
    EXPECT_EQ(a.wcrt, b.wcrt) << label << " job " << k;
    EXPECT_EQ(a.schedulable, b.schedulable) << label << " job " << k;
    ASSERT_EQ(a.hops.size(), b.hops.size()) << label << " job " << k;
    for (std::size_t h = 0; h < a.hops.size(); ++h) {
      EXPECT_EQ(a.hops[h].local_bound, b.hops[h].local_bound)
          << label << " job " << k << " hop " << h;
    }
  }
}

/// One random operation sequence against one session; every step is checked
/// against BoundsAnalyzer on the candidate system built independently.
/// `performed` counts the operations run (ASSERT macros force void return).
void run_sequence(Rng& rng, SchedulerKind scheduler, bool mixed, int threads,
                  bool pin_horizon, int ops, const std::string& label,
                  int& performed) {
  const System base = random_base(rng, scheduler, mixed);

  SessionConfig cfg;
  cfg.analysis.threads = threads;
  cfg.analysis.use_curve_cache = true;
  if (pin_horizon) {
    cfg.analysis.horizon = 4.0 * default_horizon(base, AnalysisConfig{});
  }

  // The reference config: serial, uncached, same horizon policy. The engine
  // differential tests prove threads/cache are invisible, so this checks the
  // session against the strictest baseline in one comparison.
  AnalysisConfig ref_cfg;
  ref_cfg.horizon = cfg.analysis.horizon;

  AdmissionSession session(base, cfg);
  expect_bit_identical(BoundsAnalyzer(ref_cfg).analyze(base), session.last(),
                       label + " base");

  System shadow = base;  // independently maintained committed system
  std::vector<std::uint64_t> admitted_ids;
  for (int op = 0; op < ops; ++op) {
    const std::string op_label = label + " op " + std::to_string(op);
    const int kind = rng.uniform_int(0, 9);
    if (kind < 3 && !admitted_ids.empty()) {  // remove a previously added job
      const std::size_t pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<int>(admitted_ids.size()) - 1));
      const std::uint64_t id = admitted_ids[pick];
      System candidate = shadow;
      ASSERT_TRUE(candidate.remove_job(candidate.job_index_by_id(id)));
      const Decision d = session.remove(id);
      ASSERT_TRUE(d.ok) << op_label;
      EXPECT_TRUE(d.committed) << op_label;
      expect_bit_identical(BoundsAnalyzer(ref_cfg).analyze(candidate),
                           d.analysis, op_label + " remove");
      shadow = candidate;
      admitted_ids.erase(admitted_ids.begin() +
                         static_cast<std::ptrdiff_t>(pick));
    } else {
      const bool query_only = kind >= 8;
      Job job = random_job(rng, shadow, op);
      System candidate = shadow;
      candidate.add_job(job);
      const AnalysisResult fresh = BoundsAnalyzer(ref_cfg).analyze(candidate);
      const Decision d =
          query_only ? session.what_if(job) : session.admit(job);
      // A structurally rejected candidate (e.g. an FCFS coupling cycle) must
      // fail with the analyzer's own error -- and agree with the fresh run.
      expect_bit_identical(fresh, d.analysis,
                           op_label + (query_only ? " what_if" : " admit"));
      EXPECT_EQ(d.ok, fresh.ok) << op_label << ": " << d.error;
      EXPECT_EQ(d.admitted, d.ok && fresh.all_schedulable()) << op_label;
      EXPECT_EQ(d.committed, !query_only && d.admitted) << op_label;
      if (d.committed) {
        // The session assigns ids even for rolled-back candidates, so the
        // shadow must adopt the session's id rather than auto-assign one.
        Job committed = job;
        committed.id = d.job_id;
        shadow.add_job(std::move(committed));
        admitted_ids.push_back(d.job_id);
      }
    }
    // The session's committed state must always match the shadow system.
    ASSERT_EQ(session.system().job_count(), shadow.job_count()) << op_label;
    ++performed;
  }
  // Final consistency: the retained committed analysis equals a fresh run.
  expect_bit_identical(BoundsAnalyzer(ref_cfg).analyze(shadow), session.last(),
                       label + " final");
}

/// >= 200 operations per thread count, spread over schedulers, horizon
/// policies and heterogeneous systems (the ISSUE acceptance bar).
TEST(ServiceDifferential, RandomSequencesMatchFreshAnalysis) {
  const RngFactory factory(0x5E55104E);
  const struct {
    SchedulerKind scheduler;
    bool mixed;
  } batches[] = {
      {SchedulerKind::kSpp, false},
      {SchedulerKind::kSpnp, false},
      {SchedulerKind::kFcfs, false},
      {SchedulerKind::kSpp, true},
  };
  for (const int threads : thread_counts()) {
    int total_ops = 0;
    std::uint64_t stream = threads == 1 ? 0 : 1000;
    for (const auto& batch : batches) {
      for (int trial = 0; trial < 4; ++trial) {
        Rng rng = factory.stream(stream++);
        const bool pin = trial % 2 == 0;
        const std::string label =
            std::string(to_string(batch.scheduler)) +
            (batch.mixed ? "+mixed" : "") + " trial " + std::to_string(trial) +
            " threads " + std::to_string(threads);
        run_sequence(rng, batch.scheduler, batch.mixed, threads, pin,
                     /*ops=*/13, label, total_ops);
        if (HasFatalFailure()) return;
      }
    }
    EXPECT_GE(total_ops, 200) << "threads " << threads;
  }
}

// A session with a pinned horizon must actually exercise the incremental
// path (otherwise the differential test above only covers the fallback).
TEST(ServiceDifferential, PinnedHorizonTakesIncrementalPath) {
  Rng rng(42);
  const System base = random_base(rng, SchedulerKind::kSpp, false);
  SessionConfig cfg;
  cfg.analysis.horizon = 4.0 * default_horizon(base, AnalysisConfig{});
  AdmissionSession session(base, cfg);
  int incremental = 0;
  for (int i = 0; i < 6; ++i) {
    const Decision d = session.what_if(random_job(rng, base, i));
    ASSERT_TRUE(d.ok) << d.error;
    if (d.incremental) ++incremental;
  }
  EXPECT_GT(incremental, 0);
}

// The explain payload (per-hop bound provenance, docs/observability.md) is
// filled from the same per-subjob states both what-if paths compute, so the
// fast read path and the general path must agree on every field exactly --
// double-equality on the bounds, not approximate.
TEST(Service, ExplainBitIdenticalBetweenFastAndGeneralWhatIf) {
  Rng rng(29);
  const System base = random_base(rng, SchedulerKind::kSpp, false);
  SessionConfig cfg;
  cfg.analysis.horizon = 4.0 * default_horizon(base, AnalysisConfig{});
  AdmissionSession session(base, cfg);
  for (int i = 0; i < 8; ++i) {
    const Job job = random_job(rng, base, i);
    const service::ReadDecision fast = session.read_what_if(job);
    const service::ReadDecision general =
        AdmissionSession::summarize(session.what_if(job));
    ASSERT_EQ(fast.ok, general.ok) << "candidate " << i;
    if (!fast.ok) continue;
    ASSERT_TRUE(fast.explain.available) << "candidate " << i;
    ASSERT_TRUE(general.explain.available) << "candidate " << i;
    EXPECT_EQ(fast.explain.wcrt, general.explain.wcrt) << "candidate " << i;
    EXPECT_EQ(fast.explain.deadline, general.explain.deadline);
    EXPECT_EQ(fast.explain.dominant_hop, general.explain.dominant_hop);
    ASSERT_EQ(fast.explain.hops.size(), general.explain.hops.size());
    for (std::size_t h = 0; h < fast.explain.hops.size(); ++h) {
      EXPECT_EQ(fast.explain.hops[h].hop, general.explain.hops[h].hop);
      EXPECT_EQ(fast.explain.hops[h].processor,
                general.explain.hops[h].processor);
      EXPECT_EQ(fast.explain.hops[h].bound, general.explain.hops[h].bound)
          << "candidate " << i << " hop " << h;
    }
  }
}

// Explain invariants on the general path: one provenance entry per chain
// hop, the candidate's wcrt is the hop-order sum of the local bounds
// (Eq. 11/12 structure), and dominant_hop points at the largest term.
TEST(Service, ExplainDecomposesWcrtAcrossHops) {
  Rng rng(31);
  const System base = random_base(rng, SchedulerKind::kSpp, false);
  AdmissionSession session(base, SessionConfig{});
  for (int i = 0; i < 6; ++i) {
    const Job job = random_job(rng, base, i);
    const service::ReadDecision rd =
        AdmissionSession::summarize(session.what_if(job));
    ASSERT_TRUE(rd.ok) << rd.error;
    ASSERT_TRUE(rd.explain.available);
    EXPECT_EQ(rd.explain.deadline, job.deadline);
    ASSERT_EQ(rd.explain.hops.size(), job.chain.size());
    if (!std::isfinite(rd.explain.wcrt)) continue;  // unbounded candidate
    Time sum = 0.0;
    Time best = -1.0;
    int best_hop = -1;
    for (const service::ExplainHop& hop : rd.explain.hops) {
      EXPECT_EQ(hop.processor,
                job.chain[static_cast<std::size_t>(hop.hop)].processor);
      sum += hop.bound;
      if (hop.bound > best) {
        best = hop.bound;
        best_hop = hop.hop;
      }
    }
    EXPECT_EQ(sum, rd.explain.wcrt) << "candidate " << i;
    EXPECT_EQ(best_hop, rd.explain.dominant_hop) << "candidate " << i;
    EXPECT_GE(rd.explain.horizon_doublings, 0);
  }
}

TEST(Service, WhatIfNeverCommits) {
  Rng rng(7);
  const System base = random_base(rng, SchedulerKind::kSpp, false);
  AdmissionSession session(base, SessionConfig{});
  const AnalysisResult before = session.last();
  const Decision d = session.what_if(random_job(rng, base, 0));
  ASSERT_TRUE(d.ok) << d.error;
  EXPECT_FALSE(d.committed);
  EXPECT_EQ(session.system().job_count(), base.job_count());
  expect_bit_identical(before, session.last(), "what_if state");
}

TEST(Service, RejectedAdmitLeavesSessionUntouched) {
  Rng rng(11);
  const System base = random_base(rng, SchedulerKind::kSpp, false);
  AdmissionSession session(base, SessionConfig{});
  const AnalysisResult before = session.last();
  // A job that saturates processor 0 cannot be schedulable.
  Job hog;
  hog.name = "hog";
  hog.deadline = 0.5;
  hog.chain.push_back(Subjob{0, 0.9, 0});
  hog.arrivals = ArrivalSequence::periodic(1.0, 20.0);
  service::assign_lowest_priorities(base, hog);
  const Decision d = session.admit(hog);
  ASSERT_TRUE(d.ok) << d.error;
  EXPECT_FALSE(d.admitted);
  EXPECT_FALSE(d.committed);
  EXPECT_EQ(session.system().job_count(), base.job_count());
  expect_bit_identical(before, session.last(), "rejected admit state");
}

TEST(Service, StructurallyInvalidJobIsRejectedWithAnalyzerError) {
  Rng rng(13);
  const System base = random_base(rng, SchedulerKind::kSpp, false);
  AdmissionSession session(base, SessionConfig{});
  Job bad;
  bad.name = "bad";
  bad.deadline = 1.0;
  bad.chain.push_back(Subjob{base.processor_count() + 5, 0.1, 99});
  bad.arrivals = ArrivalSequence::periodic(1.0, 10.0);
  const Decision d = session.admit(bad);
  EXPECT_FALSE(d.ok);
  EXPECT_NE(d.error.find("invalid system"), std::string::npos) << d.error;
  EXPECT_EQ(session.system().job_count(), base.job_count());
}

TEST(Service, RemoveUnknownIdFails) {
  Rng rng(17);
  AdmissionSession session(random_base(rng, SchedulerKind::kSpp, false),
                           SessionConfig{});
  const Decision d = session.remove(987654);
  EXPECT_FALSE(d.ok);
  EXPECT_FALSE(d.committed);
}

TEST(Service, DuplicateExplicitIdFails) {
  Rng rng(19);
  const System base = random_base(rng, SchedulerKind::kSpp, false);
  AdmissionSession session(base, SessionConfig{});
  Job job = random_job(rng, base, 0);
  job.id = base.job(0).id;  // collides with an existing job
  const Decision d = session.admit(job);
  EXPECT_FALSE(d.ok);
  EXPECT_EQ(session.system().job_count(), base.job_count());
}

// Invalid operations -- removing unknown or already-removed ids, admitting
// a duplicate explicit id -- must fail with a clean error AND leave the
// retained curve state untouched: subsequent decisions stay bit-identical
// to fresh analyses.
TEST(Service, InvalidOpsDoNotCorruptRetainedState) {
  Rng rng(23);
  const System base = random_base(rng, SchedulerKind::kSpp, false);
  SessionConfig cfg;
  cfg.analysis.horizon = 4.0 * default_horizon(base, AnalysisConfig{});
  AnalysisConfig ref_cfg;
  ref_cfg.horizon = cfg.analysis.horizon;
  AdmissionSession session(base, cfg);
  System shadow = base;

  auto check_matches_shadow = [&](const std::string& label) {
    expect_bit_identical(BoundsAnalyzer(ref_cfg).analyze(shadow),
                         session.last(), label);
    ASSERT_EQ(session.system().job_count(), shadow.job_count()) << label;
  };

  // Admit a candidate with an explicit id; it may be rejected on
  // schedulability grounds, but the session must stay consistent.
  Job first = random_job(rng, shadow, 0);
  first.id = 777;
  const Decision admit1 = session.admit(first);
  ASSERT_TRUE(admit1.ok) << admit1.error;
  if (admit1.committed) {
    Job committed = first;
    shadow.add_job(std::move(committed));
  }
  check_matches_shadow("after first admit");

  // Double-admit of the same explicit id: clean duplicate error.
  Job dup = random_job(rng, shadow, 1);
  dup.id = 777;
  const Decision admit2 = session.admit(dup);
  if (admit1.committed) {
    EXPECT_FALSE(admit2.ok);
    EXPECT_EQ(admit2.error, "duplicate job id 777");
  }
  check_matches_shadow("after duplicate admit");

  // Remove of a nonexistent id: clean error, no state change.
  const Decision gone = session.remove(987654321);
  EXPECT_FALSE(gone.ok);
  EXPECT_EQ(gone.error, "no job with id 987654321");
  EXPECT_FALSE(gone.committed);
  check_matches_shadow("after remove of unknown id");

  if (admit1.committed) {
    // Remove the admitted job, then remove it AGAIN: the second must fail
    // without touching the (already reconciled) curves.
    const Decision removed = session.remove(777);
    ASSERT_TRUE(removed.ok) << removed.error;
    ASSERT_TRUE(shadow.remove_job(shadow.job_index_by_id(777)));
    check_matches_shadow("after remove");

    const Decision twice = session.remove(777);
    EXPECT_FALSE(twice.ok);
    EXPECT_EQ(twice.error, "no job with id 777");
    check_matches_shadow("after double remove");
  }

  // The session must still serve valid work after the abuse.
  const Decision after = session.what_if(random_job(rng, shadow, 2));
  EXPECT_TRUE(after.ok) << after.error;
  check_matches_shadow("after recovery what_if");
}

// Randomized differential sequences salted with invalid operations: every
// few steps an invalid remove or duplicate-id admit fires, and the next
// valid decision must still match a fresh analysis bit for bit.
TEST(ServiceDifferential, InvalidOpsInterleavedWithValidSequences) {
  const RngFactory factory(0xBADC0DE5);
  for (int trial = 0; trial < 3; ++trial) {
    Rng rng = factory.stream(static_cast<std::uint64_t>(trial));
    const System base = random_base(rng, SchedulerKind::kSpp, trial == 2);
    SessionConfig cfg;
    cfg.analysis.horizon = 4.0 * default_horizon(base, AnalysisConfig{});
    AnalysisConfig ref_cfg;
    ref_cfg.horizon = cfg.analysis.horizon;
    AdmissionSession session(base, cfg);
    System shadow = base;
    std::vector<std::uint64_t> admitted;

    for (int op = 0; op < 12; ++op) {
      const std::string label =
          "trial " + std::to_string(trial) + " op " + std::to_string(op);
      switch (rng.uniform_int(0, 3)) {
        case 0: {  // invalid remove
          const Decision d = session.remove(500000 + op);
          EXPECT_FALSE(d.ok) << label;
          break;
        }
        case 1: {  // duplicate-id admit against an existing base job
          Job dup = random_job(rng, shadow, op);
          dup.id = shadow.job(0).id;
          const Decision d = session.admit(dup);
          EXPECT_FALSE(d.ok) << label;
          EXPECT_EQ(d.error,
                    "duplicate job id " + std::to_string(dup.id))
              << label;
          break;
        }
        case 2: {  // valid admit
          Job job = random_job(rng, shadow, op);
          const Decision d = session.admit(job);
          ASSERT_TRUE(d.ok) << label << ": " << d.error;
          if (d.committed) {
            Job committed = job;
            committed.id = d.job_id;
            shadow.add_job(std::move(committed));
            admitted.push_back(d.job_id);
          }
          break;
        }
        default: {  // valid remove when possible
          if (admitted.empty()) break;
          const std::uint64_t id = admitted.back();
          admitted.pop_back();
          const Decision d = session.remove(id);
          ASSERT_TRUE(d.ok) << label << ": " << d.error;
          ASSERT_TRUE(shadow.remove_job(shadow.job_index_by_id(id))) << label;
          break;
        }
      }
      expect_bit_identical(BoundsAnalyzer(ref_cfg).analyze(shadow),
                           session.last(), label);
      if (HasFatalFailure()) return;
    }
  }
}

TEST(Service, AssignLowestPrioritiesPicksMaxPlusOnePerProcessor) {
  System system(2);
  Job a;
  a.name = "a";
  a.deadline = 10.0;
  a.chain.push_back(Subjob{0, 0.1, 3});
  a.chain.push_back(Subjob{1, 0.1, 7});
  a.arrivals = ArrivalSequence::periodic(5.0, 20.0);
  system.add_job(a);

  Job fresh;
  fresh.name = "b";
  fresh.deadline = 10.0;
  fresh.chain.push_back(Subjob{0, 0.1, 0});
  fresh.chain.push_back(Subjob{0, 0.1, 0});  // two hops on one processor
  fresh.chain.push_back(Subjob{1, 0.1, 0});
  fresh.arrivals = ArrivalSequence::periodic(5.0, 20.0);
  service::assign_lowest_priorities(system, fresh);
  EXPECT_EQ(fresh.chain[0].priority, 4);
  EXPECT_EQ(fresh.chain[1].priority, 5);  // counts its own earlier hop
  EXPECT_EQ(fresh.chain[2].priority, 8);
}

}  // namespace
}  // namespace rta
