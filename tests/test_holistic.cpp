// Tests for the SPP/S&L holistic baseline: classical busy-period results,
// jitter propagation, and applicability restrictions.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/holistic.hpp"
#include "analysis/utilization.hpp"

namespace rta {
namespace {

Job periodic_job(const std::string& name, double period, double deadline,
                 std::vector<Subjob> chain, double window = 60.0) {
  Job j;
  j.name = name;
  j.deadline = deadline;
  j.chain = std::move(chain);
  j.arrivals = ArrivalSequence::periodic(period, window);
  return j;
}

TEST(JitteredResponse, ClassicRateMonotonicExample) {
  // Liu & Layland-style: C = (1, 2), T = (4, 6). R1 = 1; R2 = 1 + 2 = 3.
  const JitteredTask t1{4.0, 0.0, 1.0};
  const JitteredTask t2{6.0, 0.0, 2.0};
  EXPECT_DOUBLE_EQ(jittered_response_time(t1, {}, 1e6), 1.0);
  EXPECT_DOUBLE_EQ(jittered_response_time(t2, {t1}, 1e6), 3.0);
}

TEST(JitteredResponse, InterferenceWithMultipleHits) {
  // C = (2, 2), T = (4, 10): w = 2 + 2*ceil(w/4) has fixpoint w = 4 (the
  // second high-priority instance lands exactly at the completion instant
  // and does not interfere). With a slightly larger execution time the
  // second hit is taken: C_lo = 2.5 -> w = 2.5 + 2*ceil(w/4) -> w = 6.5.
  const JitteredTask hi{4.0, 0.0, 2.0};
  EXPECT_DOUBLE_EQ(jittered_response_time({10.0, 0.0, 2.0}, {hi}, 1e6), 4.0);
  EXPECT_DOUBLE_EQ(jittered_response_time({10.0, 0.0, 2.5}, {hi}, 1e6), 6.5);
}

TEST(JitteredResponse, JitterIncreasesInterference) {
  // Jitter on the high task can squeeze two activations into the window.
  const JitteredTask hi{4.0, 3.0, 2.0};
  const JitteredTask lo{20.0, 0.0, 1.0};
  // w = 1 + 2*ceil((w+3)/4): w=3 -> ceil(6/4)=2 -> w=5 -> ceil(2)=2 -> w=5.
  EXPECT_DOUBLE_EQ(jittered_response_time(lo, {hi}, 1e6), 5.0);
}

TEST(JitteredResponse, OwnJitterAddsToResponse) {
  const JitteredTask solo{10.0, 2.5, 1.0};
  EXPECT_DOUBLE_EQ(jittered_response_time(solo, {}, 1e6), 3.5);
}

TEST(JitteredResponse, ArbitraryDeadlinesMultipleInstances) {
  // Utilization 1.0 with C=3, T=3 alone: every instance finishes exactly at
  // its period boundary; R = 3.
  const JitteredTask t{3.0, 0.0, 3.0};
  EXPECT_DOUBLE_EQ(jittered_response_time(t, {}, 1e6), 3.0);
}

TEST(JitteredResponse, OverloadDiverges) {
  const JitteredTask hi{2.0, 0.0, 1.5};
  const JitteredTask lo{4.0, 0.0, 1.5};
  EXPECT_TRUE(std::isinf(jittered_response_time(lo, {hi}, 1e6)));
}

TEST(Holistic, SingleProcessorMatchesBusyPeriodAnalysis) {
  System sys(1, SchedulerKind::kSpp);
  sys.add_job(periodic_job("Hi", 4.0, 4.0, {{0, 1.0, 1}}));
  sys.add_job(periodic_job("Lo", 6.0, 6.0, {{0, 2.0, 2}}));
  const AnalysisResult r = HolisticAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.jobs[0].wcrt, 1.0);
  EXPECT_DOUBLE_EQ(r.jobs[1].wcrt, 3.0);
  EXPECT_TRUE(r.all_schedulable());
}

TEST(Holistic, PipelineAccumulatesJitter) {
  // One job over two processors, no interference: end-to-end bound is the
  // sum of execution times.
  System sys(2, SchedulerKind::kSpp);
  sys.add_job(periodic_job("A", 10.0, 10.0, {{0, 1.0, 1}, {1, 2.0, 1}}));
  const AnalysisResult r = HolisticAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.jobs[0].wcrt, 3.0);
}

TEST(Holistic, CrossProcessorJitterPropagates) {
  // B's hop 2 interferes with A's hop 2; B's hop-2 release jitter comes from
  // its hop-1 response. The bound must exceed the no-jitter value.
  System sys(2, SchedulerKind::kSpp);
  sys.add_job(periodic_job("A", 10.0, 30.0, {{0, 2.0, 2}, {1, 2.0, 2}}));
  sys.add_job(periodic_job("B", 8.0, 30.0, {{0, 1.0, 1}, {1, 3.0, 1}}));
  const AnalysisResult r = HolisticAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(std::isfinite(r.jobs[0].wcrt));
  // A hop1: 2 + 1 = 3 at least; A hop2 suffers B hop2 (3 units, jittered).
  EXPECT_GE(r.jobs[0].wcrt, 8.0 - 1e-9);
}

TEST(Holistic, RejectsNonPeriodicArrivals) {
  System sys(1, SchedulerKind::kSpp);
  Job j;
  j.name = "burst";
  j.deadline = 10.0;
  j.chain = {{0, 1.0, 1}};
  j.arrivals = ArrivalSequence(std::vector<Time>{0.0, 1.0, 4.0});
  sys.add_job(std::move(j));
  const AnalysisResult r = HolisticAnalyzer().analyze(sys);
  EXPECT_FALSE(r.ok);
}

TEST(Holistic, RejectsNonSppSchedulers) {
  System sys(1, SchedulerKind::kFcfs);
  sys.add_job(periodic_job("A", 5.0, 5.0, {{0, 1.0, 0}}));
  const AnalysisResult r = HolisticAnalyzer().analyze(sys);
  EXPECT_FALSE(r.ok);
}

TEST(Holistic, OverloadedSystemUnschedulable) {
  System sys(1, SchedulerKind::kSpp);
  sys.add_job(periodic_job("Hi", 2.0, 2.0, {{0, 1.5, 1}}));
  sys.add_job(periodic_job("Lo", 4.0, 4.0, {{0, 1.5, 2}}));
  const AnalysisResult r = HolisticAnalyzer().analyze(sys);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.all_schedulable());
}

TEST(LiuLayland, BoundValues) {
  EXPECT_DOUBLE_EQ(liu_layland_bound(1), 1.0);
  EXPECT_NEAR(liu_layland_bound(2), 0.8284, 1e-4);
  EXPECT_NEAR(liu_layland_bound(100), 0.69556, 1e-4);
  EXPECT_GT(liu_layland_bound(100), std::log(2.0));  // approaches ln 2
}

TEST(LiuLayland, SchedulabilityTest) {
  System sys(1, SchedulerKind::kSpp);
  sys.add_job(periodic_job("A", 4.0, 4.0, {{0, 1.0, 1}}));
  sys.add_job(periodic_job("B", 8.0, 8.0, {{0, 2.0, 2}}));
  // U = 0.25 + 0.25 = 0.5 <= 0.828.
  EXPECT_TRUE(liu_layland_schedulable(sys));
  const auto util = processor_utilizations(sys);
  EXPECT_NEAR(util[0], 0.5, 1e-12);
  // Push utilization past the bound.
  sys.job(1).chain[0].exec_time = 5.6;  // U = 0.95
  EXPECT_FALSE(liu_layland_schedulable(sys));
}

}  // namespace
}  // namespace rta
