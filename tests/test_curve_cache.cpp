// Property tests for the CurveCache memoization layer: cached results are
// bit-identical to direct computation, hash collisions fall back to exact
// segment comparison, and the hit/miss counters add up.
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "curve/curve_cache.hpp"
#include "curve/minplus.hpp"
#include "util/rng.hpp"

namespace rta {
namespace {

constexpr Time kHorizon = 40.0;

/// A random nondecreasing curve: a mix of steps and ramps on [0, kHorizon].
PwlCurve random_monotone_curve(Rng& rng) {
  std::vector<Knot> knots;
  knots.push_back({0.0, 0.0, rng.uniform(0.0, 2.0)});
  Time t = 0.0;
  double v = knots.front().right;
  const int pieces = rng.uniform_int(1, 8);
  for (int i = 0; i < pieces && t < kHorizon - 1.0; ++i) {
    t += rng.uniform(0.7, 6.0);
    if (t >= kHorizon) break;
    const double left = v + rng.uniform(0.0, 3.0);   // ramp up to the knot
    const double jump = rng.uniform_int(0, 1) == 0   // optional step
                            ? 0.0
                            : rng.uniform(0.5, 2.0);
    knots.push_back({t, left, left + jump});
    v = left + jump;
  }
  knots.push_back({kHorizon, v + rng.uniform(0.0, 2.0),
                   v + rng.uniform(0.0, 2.0)});
  knots.back().right = knots.back().left;
  return PwlCurve(std::move(knots));
}

TEST(CurveCache, ConvolutionMatchesDirectComputation) {
  CurveCache cache;
  Rng rng(101);
  for (int i = 0; i < 40; ++i) {
    const PwlCurve f = random_monotone_curve(rng);
    const PwlCurve g = random_monotone_curve(rng);
    const PwlCurve direct = min_plus_convolution(f, g);
    EXPECT_TRUE(curves_identical(cache.convolution(f, g), direct));  // miss
    EXPECT_TRUE(curves_identical(cache.convolution(f, g), direct));  // hit
  }
  const CurveCacheStats s = cache.stats();
  EXPECT_EQ(s.conv_misses, 40u);
  EXPECT_EQ(s.conv_hits, 40u);
}

TEST(CurveCache, ConvolutionIsOrderSensitive) {
  CurveCache cache;
  Rng rng(7);
  const PwlCurve f = random_monotone_curve(rng);
  const PwlCurve g = random_monotone_curve(rng);
  // (f, g) and (g, f) are distinct keys; both must match their own direct
  // result (min-plus convolution is commutative mathematically, but the
  // knot enumeration order may differ -- the cache must not conflate them).
  EXPECT_TRUE(
      curves_identical(cache.convolution(f, g), min_plus_convolution(f, g)));
  EXPECT_TRUE(
      curves_identical(cache.convolution(g, f), min_plus_convolution(g, f)));
}

TEST(CurveCache, DeconvolutionMatchesDirectComputation) {
  CurveCache cache;
  Rng rng(202);
  for (int i = 0; i < 40; ++i) {
    const PwlCurve f = random_monotone_curve(rng);
    const PwlCurve g = random_monotone_curve(rng);
    const PwlCurve direct = min_plus_deconvolution(f, g);
    EXPECT_TRUE(curves_identical(cache.deconvolution(f, g), direct));
    EXPECT_TRUE(curves_identical(cache.deconvolution(f, g), direct));
  }
}

TEST(CurveCache, LevelInversesMatchDirectPseudoInverse) {
  CurveCache cache;
  Rng rng(303);
  for (int i = 0; i < 40; ++i) {
    const PwlCurve c = random_monotone_curve(rng);
    const long long count = 12;
    const auto table = cache.level_inverses(c, count);
    ASSERT_EQ(table->size(), static_cast<std::size_t>(count));
    for (long long m = 1; m <= count; ++m) {
      const Time direct = c.pseudo_inverse(static_cast<double>(m));
      // Bitwise: both values come from the same function on the same curve.
      EXPECT_EQ((*table)[static_cast<std::size_t>(m - 1)], direct)
          << "curve " << i << " level " << m;
    }
  }
}

TEST(CurveCache, LevelInversesExtendWithoutMutatingSnapshots) {
  CurveCache cache;
  Rng rng(404);
  const PwlCurve c = random_monotone_curve(rng);
  const auto small = cache.level_inverses(c, 3);
  const std::vector<Time> copy = *small;
  const auto large = cache.level_inverses(c, 10);
  EXPECT_EQ(*small, copy);  // earlier snapshot untouched
  ASSERT_EQ(large->size(), 10u);
  for (std::size_t m = 0; m < 3; ++m) EXPECT_EQ((*large)[m], copy[m]);
}

TEST(CurveCache, PseudoInverseMatchesDirectIncludingUnreachableLevels) {
  CurveCache cache;
  Rng rng(505);
  for (int i = 0; i < 30; ++i) {
    const PwlCurve c = random_monotone_curve(rng);
    for (const double y : {0.0, 0.5, 1.0, 2.5, c.end_value(),
                           c.end_value() + 10.0}) {
      const Time direct = c.pseudo_inverse(y);
      const Time cached = cache.pseudo_inverse(c, y);
      if (std::isinf(direct)) {
        EXPECT_TRUE(std::isinf(cached));
      } else {
        EXPECT_EQ(cached, direct);
      }
      EXPECT_EQ(cache.pseudo_inverse(c, y), cached);  // repeat: hit
    }
  }
}

TEST(CurveCache, HitMissCountersAreConsistent) {
  CurveCache cache;
  Rng rng(606);
  const PwlCurve f = random_monotone_curve(rng);
  const PwlCurve g = random_monotone_curve(rng);

  (void)cache.convolution(f, g);
  CurveCacheStats s = cache.stats();
  EXPECT_EQ(s.conv_misses, 1u);
  EXPECT_EQ(s.conv_hits, 0u);

  (void)cache.convolution(f, g);
  s = cache.stats();
  EXPECT_EQ(s.conv_misses, 1u);
  EXPECT_EQ(s.conv_hits, 1u);

  (void)cache.level_inverses(f, 5);  // 5 misses
  (void)cache.level_inverses(f, 5);  // 5 hits
  (void)cache.level_inverses(f, 8);  // 5 hits + 3 misses
  s = cache.stats();
  EXPECT_EQ(s.pinv_misses, 8u);
  EXPECT_EQ(s.pinv_hits, 10u);
  EXPECT_EQ(s.hits(), s.conv_hits + s.pinv_hits);
  EXPECT_EQ(s.misses(), s.conv_misses + s.pinv_misses);

  // clear() drops entries but keeps counters; the next lookup misses again.
  cache.clear();
  (void)cache.convolution(f, g);
  s = cache.stats();
  EXPECT_EQ(s.conv_misses, 2u);
}

// A degraded hash (all keys collapse to one bit) forces every lookup through
// the collision path; results must still be exact and the collisions
// counter must record the fallbacks.
TEST(CurveCache, HashCollisionsFallBackToFullComparison) {
  CurveCache degraded(/*hash_mask=*/0x1);
  Rng rng(707);
  std::vector<PwlCurve> curves;
  for (int i = 0; i < 12; ++i) curves.push_back(random_monotone_curve(rng));

  for (const PwlCurve& c : curves) {
    const auto table = degraded.level_inverses(c, 6);
    for (long long m = 1; m <= 6; ++m) {
      EXPECT_EQ((*table)[static_cast<std::size_t>(m - 1)],
                c.pseudo_inverse(static_cast<double>(m)));
    }
  }
  // Second pass: every curve must still resolve to ITS OWN entry.
  for (const PwlCurve& c : curves) {
    const auto table = degraded.level_inverses(c, 6);
    for (long long m = 1; m <= 6; ++m) {
      EXPECT_EQ((*table)[static_cast<std::size_t>(m - 1)],
                c.pseudo_inverse(static_cast<double>(m)));
    }
  }
  EXPECT_GT(degraded.stats().collisions, 0u);

  for (std::size_t i = 0; i < curves.size(); ++i) {
    for (std::size_t j = 0; j < curves.size(); ++j) {
      const PwlCurve direct = min_plus_convolution(curves[i], curves[j]);
      EXPECT_TRUE(
          curves_identical(degraded.convolution(curves[i], curves[j]), direct));
    }
  }
}

TEST(CurveCache, ConcurrentLookupsReturnIdenticalResults) {
  CurveCache cache;
  Rng seed_rng(808);
  std::vector<PwlCurve> curves;
  for (int i = 0; i < 8; ++i) curves.push_back(random_monotone_curve(seed_rng));

  std::vector<std::vector<Time>> per_thread(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 20; ++round) {
        for (const PwlCurve& c : curves) {
          const auto table = cache.level_inverses(c, 10);
          per_thread[t].insert(per_thread[t].end(), table->begin(),
                               table->end());
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < 4; ++t) EXPECT_EQ(per_thread[t], per_thread[0]);
}

}  // namespace
}  // namespace rta
