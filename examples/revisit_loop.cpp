// Cyclic topologies (the paper's §6 open problem, implemented here): a job
// that REVISITS a processor creates a "physical loop" -- its second visit's
// arrival function depends on service decisions that depend on its own first
// visit. The acyclic analyzers refuse; IterativeBoundsAnalyzer solves the
// fixed point X^{n+1} = F(X^n) at the level of arrival-curve bounds.
//
// Scenario: a request/response job on a gateway:
//   request:  gateway P0 -> backend P1 -> gateway P0 (reply processing)
//   telemetry: independent traffic on both processors.
//
// Build & run:  ./build/examples/revisit_loop
#include <cmath>
#include <cstdio>

#include "rta/rta.hpp"

int main() {
  using namespace rta;

  System system(2, SchedulerKind::kSpnp);
  const Time window = 120.0;

  Job request;
  request.name = "request";
  request.deadline = 14.0;
  request.chain = {{0, 1.0, 0}, {1, 2.5, 0}, {0, 1.5, 0}};  // P0 twice!
  request.arrivals = ArrivalSequence::periodic(10.0, window);
  system.add_job(std::move(request));

  Job telemetry;
  telemetry.name = "telemetry";
  telemetry.deadline = 24.0;
  telemetry.chain = {{1, 1.0, 0}, {0, 0.8, 0}};
  telemetry.arrivals = ArrivalSequence::bursty_eq27(0.12, window);
  system.add_job(std::move(telemetry));

  // Replies beat fresh requests on the gateway (a common design): the
  // second visit outranks the first, which is exactly what closes the
  // dependency loop -- the first visit's service depends on the second
  // visit's arrivals, which depend on the first visit's departures.
  system.subjob({0, 2}).priority = 1;  // reply processing on P0
  system.subjob({0, 0}).priority = 2;  // request intake on P0
  system.subjob({1, 1}).priority = 3;  // telemetry on P0
  system.subjob({0, 1}).priority = 1;  // backend work on P1
  system.subjob({1, 0}).priority = 2;  // telemetry on P1

  std::printf("dependency graph acyclic? %s\n",
              system.dependency_graph_is_acyclic() ? "yes" : "no");

  const AnalysisResult direct = BoundsAnalyzer().analyze(system);
  std::printf("BoundsAnalyzer: %s\n",
              direct.ok ? "ok (unexpected!)" : direct.error.c_str());

  AnalysisConfig cfg;
  cfg.max_iterations = 32;
  IterativeBoundsAnalyzer analyzer(cfg);
  const AnalysisResult result = analyzer.analyze(system);
  if (!result.ok) {
    std::fprintf(stderr, "iterative analysis failed: %s\n",
                 result.error.c_str());
    return 1;
  }
  std::printf("IterativeBoundsAnalyzer converged in %d iteration(s)\n\n",
              analyzer.last_iterations());

  const SimResult sim = simulate(system, result.horizon);
  std::printf("job         deadline   bound   simulated   verdict\n");
  for (int k = 0; k < system.job_count(); ++k) {
    std::printf("%-10s %9.2f %7.2f %11.2f   %s\n",
                system.job(k).name.c_str(), system.job(k).deadline,
                result.jobs[k].wcrt, sim.worst_response[k],
                result.jobs[k].schedulable ? "guaranteed" : "not proven");
  }

  bool sound = true;
  for (int k = 0; k < system.job_count(); ++k) {
    if (std::isfinite(result.jobs[k].wcrt) &&
        result.jobs[k].wcrt < sim.worst_response[k] - 1e-6) {
      sound = false;
    }
  }
  std::printf("\nbounds dominate the simulation: %s\n", sound ? "yes" : "NO");
  return sound ? 0 : 1;
}
