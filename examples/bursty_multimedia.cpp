// Bursty multimedia pipeline -- the workload class that motivates the
// paper's aperiodic analysis. A surveillance node processes two video
// streams and a control channel across three heterogeneous processors:
//
//   P0 capture DSP   (SPNP -- ISRs run to completion)
//   P1 encoder core  (SPP  -- preemptive firmware scheduler)
//   P2 network link  (FCFS -- transmit queue)
//
//   cam_a: I-frame bursts -- 3 frames back-to-back, then steady (bursty).
//   cam_b: steady 25 fps-equivalent stream (periodic).
//   ctrl:  sporadic commands with the paper's Eq. 27 burst pattern.
//
// The example analyzes the mixed system with the bounds analyzer (no exact
// method exists for such a mix), simulates it, and prints per-hop local
// delay bounds (Eq. 12) so the bottleneck stage is visible.
//
// Build & run:  ./build/examples/bursty_multimedia
#include <cmath>
#include <cstdio>

#include "rta/rta.hpp"

int main() {
  using namespace rta;

  System system(3);
  system.set_scheduler(0, SchedulerKind::kSpnp);
  system.set_scheduler(1, SchedulerKind::kSpp);
  system.set_scheduler(2, SchedulerKind::kFcfs);

  const Time window = 200.0;

  Job cam_a;
  cam_a.name = "cam_a";
  cam_a.deadline = 22.0;
  cam_a.chain = {{0, 1.2, 0}, {1, 3.0, 0}, {2, 1.6, 0}};
  // I-frame burst: 3 frames 2 time-units apart, then one frame per 8 units.
  cam_a.arrivals = ArrivalSequence::burst_then_periodic(
      /*burst=*/3, /*min_gap=*/2.0, /*period=*/8.0, window);
  system.add_job(std::move(cam_a));

  Job cam_b;
  cam_b.name = "cam_b";
  cam_b.deadline = 18.0;
  cam_b.chain = {{0, 0.8, 0}, {1, 2.2, 0}, {2, 1.2, 0}};
  cam_b.arrivals = ArrivalSequence::periodic(6.0, window);
  system.add_job(std::move(cam_b));

  Job ctrl;
  ctrl.name = "ctrl";
  ctrl.deadline = 9.0;
  ctrl.chain = {{0, 0.3, 0}, {2, 0.4, 0}};  // skips the encoder
  ctrl.arrivals = ArrivalSequence::bursty_eq27(/*x=*/0.09, window);
  system.add_job(std::move(ctrl));

  assign_proportional_deadline_monotonic(system);

  AnalysisConfig cfg;
  const AnalysisResult analysis = BoundsAnalyzer(cfg).analyze(system);
  if (!analysis.ok) {
    std::fprintf(stderr, "analysis failed: %s\n", analysis.error.c_str());
    return 1;
  }
  const SimResult sim = simulate(system, analysis.horizon);

  std::printf("stream     deadline   bound    simulated   verdict\n");
  for (int k = 0; k < system.job_count(); ++k) {
    std::printf("%-8s %9.2f %8.2f %11.2f   %s\n",
                system.job(k).name.c_str(), system.job(k).deadline,
                analysis.jobs[k].wcrt, sim.worst_response[k],
                analysis.jobs[k].schedulable ? "guaranteed" : "not proven");
  }

  std::printf("\nper-hop local response bounds d_{k,j} (Eq. 12):\n");
  const char* stage_names[] = {"capture(SPNP)", "encode(SPP)", "tx(FCFS)"};
  for (int k = 0; k < system.job_count(); ++k) {
    std::printf("  %-8s:", system.job(k).name.c_str());
    for (const SubjobReport& hop : analysis.jobs[k].hops) {
      const int p = system.subjob(hop.ref).processor;
      std::printf("  %s %.2f", stage_names[p], hop.local_bound);
    }
    std::printf("\n");
  }

  // Where does the burst hurt? Compare cam_a's worst instance against its
  // steady-state tail in the simulation.
  const auto& traces = sim.traces[0];
  double head = 0.0, tail = 0.0;
  for (std::size_t m = 0; m < traces.size(); ++m) {
    if (!traces[m].completed()) continue;
    (m < 3 ? head : tail) = std::fmax(m < 3 ? head : tail,
                                      traces[m].response());
  }
  std::printf("\ncam_a worst response inside the burst: %.2f, after it: "
              "%.2f -- bursts are where the paper's analysis earns its "
              "keep.\n", head, tail);
  return 0;
}
