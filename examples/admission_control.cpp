// Online admission control -- the paper's motivating use case for an
// efficient schedulability test. Streams of work request admission one at a
// time; each candidate is admitted only if the exact SPP analysis still
// proves every accepted job's deadline. The example reports how far each
// analysis method would have let the system fill up, demonstrating the
// resource-utilization benefit of tighter analysis (§1's second requirement).
//
// Flags: --candidates N (default 16)  --seed S  --stages N (default 3)
//
// Build & run:  ./build/examples/admission_control
#include <cstdio>
#include <vector>

#include "rta/rta.hpp"
#include "util/options.hpp"

namespace {

// A random candidate job routed through one processor per stage.
rta::Job make_candidate(int index, std::size_t stages, rta::Rng& rng,
                        rta::Time window) {
  using namespace rta;
  Job job;
  job.name = "J" + std::to_string(index);
  const double period = rng.uniform(4.0, 20.0);
  job.deadline = period * rng.uniform(1.5, 3.0);
  for (std::size_t s = 0; s < stages; ++s) {
    Subjob sub;
    sub.processor = static_cast<int>(s);
    sub.exec_time = rng.uniform(0.2, 0.9);
    job.chain.push_back(sub);
  }
  job.arrivals = rng.uniform(0.0, 1.0) < 0.5
                     ? ArrivalSequence::periodic(period, window)
                     : ArrivalSequence::bursty_eq27(1.0 / period, window);
  return job;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rta;
  const Options opts = Options::parse(argc, argv);
  const int candidates = static_cast<int>(opts.get_int("candidates", 16));
  const std::size_t stages = opts.get_int("stages", 3);
  Rng rng(opts.get_int("seed", 3));
  const Time window = 120.0;

  // One admission ledger per method; each method sees the same candidates.
  struct Ledger {
    Method method;
    System system;
    int admitted = 0;
  };
  std::vector<Ledger> ledgers;
  for (Method m : {Method::kSppExact, Method::kSppApp, Method::kSpnpApp,
                   Method::kFcfsApp}) {
    ledgers.push_back({m,
                       System(static_cast<int>(stages), method_scheduler(m)),
                       0});
  }

  std::printf("admitting up to %d candidate jobs onto a %zu-stage line\n\n",
              candidates, stages);
  std::printf("%-6s", "job");
  for (const Ledger& l : ledgers) std::printf("  %10s", method_name(l.method));
  std::printf("\n");

  for (int i = 0; i < candidates; ++i) {
    const Job candidate = make_candidate(i, stages, rng, window);
    std::printf("%-6s", candidate.name.c_str());
    for (Ledger& ledger : ledgers) {
      System trial = ledger.system;
      trial.add_job(candidate);
      assign_proportional_deadline_monotonic(trial);
      const AnalysisResult r =
          analyze_with(ledger.method, trial, AnalysisConfig{});
      const bool ok = r.ok && r.all_schedulable();
      if (ok) {
        ledger.system = std::move(trial);
        ++ledger.admitted;
      }
      std::printf("  %10s", ok ? "admit" : "reject");
    }
    std::printf("\n");
  }

  std::printf("\nadmitted totals:");
  for (const Ledger& l : ledgers) {
    std::printf("  %s=%d", method_name(l.method), l.admitted);
  }
  std::printf("\n(tighter analysis -> more admitted load on the same "
              "hardware)\n");
  return 0;
}
