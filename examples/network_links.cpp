// Modeling communication links as processors.
//
// The paper ignores inter-processor communication overhead (§3.2), but its
// model subsumes it: a network link is just another "processor", usually
// FCFS (a transmit queue) or SPNP (a CAN-style bus: priority arbitration,
// but a frame in flight is never preempted). A message hop becomes a subjob
// whose execution time is the frame transmission time.
//
// This example builds a two-ECU control system connected by a CAN-like bus:
//
//   sensor ECU (P0, SPP) --> bus (P2, SPNP) --> actuator ECU (P1, SPP)
//
// and shows (a) end-to-end bounds including the bus hop, (b) the blocking
// effect of a large low-priority frame on the bus, quantified by comparing
// against the same system with the big frame removed.
//
// Build & run:  ./build/examples/network_links
#include <cstdio>

#include "rta/rta.hpp"

namespace {

rta::System build(bool with_bulk_frame) {
  using namespace rta;
  const Time window = 200.0;
  System sys(3, SchedulerKind::kSpp);
  sys.set_scheduler(2, SchedulerKind::kSpnp);  // the bus

  Job control;
  control.name = "control";
  control.deadline = 10.0;
  control.chain = {{0, 1.0, 0},    // sample + preprocess on sensor ECU
                   {2, 0.5, 0},    // frame on the bus
                   {1, 1.5, 0}};   // control law on actuator ECU
  control.arrivals = ArrivalSequence::periodic(8.0, window);
  sys.add_job(std::move(control));

  Job monitor;
  monitor.name = "monitor";
  monitor.deadline = 30.0;
  monitor.chain = {{0, 0.8, 0}, {2, 0.4, 0}, {1, 0.6, 0}};
  monitor.arrivals = ArrivalSequence::periodic(15.0, window);
  sys.add_job(std::move(monitor));

  if (with_bulk_frame) {
    Job bulk;  // diagnostic dump: one LARGE low-priority frame
    bulk.name = "bulk";
    bulk.deadline = 100.0;
    bulk.chain = {{2, 4.0, 0}};
    bulk.arrivals = ArrivalSequence::periodic(40.0, window);
    sys.add_job(std::move(bulk));
  }
  assign_proportional_deadline_monotonic(sys);
  return sys;
}

void report(const char* label, const rta::System& sys) {
  using namespace rta;
  const AnalysisResult r = BoundsAnalyzer().analyze(sys);
  if (!r.ok) {
    std::fprintf(stderr, "%s: analysis failed: %s\n", label, r.error.c_str());
    return;
  }
  const SimResult s = simulate(sys, r.horizon);
  std::printf("%s\n", label);
  for (int k = 0; k < sys.job_count(); ++k) {
    std::printf("  %-8s bound %6.2f  sim %6.2f  deadline %6.2f  %s\n",
                sys.job(k).name.c_str(), r.jobs[k].wcrt,
                s.worst_response[k], sys.job(k).deadline,
                r.jobs[k].schedulable ? "ok" : "NOT PROVEN");
  }
  // Blocking on the bus (Eq. 15): what a control frame may wait for.
  for (const SubjobRef& ref : sys.subjobs_on(2)) {
    if (ref.job == 0) {
      std::printf("  control frame bus blocking b = %.2f\n",
                  sys.blocking_time(ref));
    }
  }
}

}  // namespace

int main() {
  std::printf("CAN-style bus modeled as an SPNP processor\n\n");
  report("with bulk diagnostic frames on the bus:", build(true));
  std::printf("\n");
  report("without them:", build(false));
  std::printf("\nThe difference in the control loop's bound is the bus\n"
              "blocking term: one maximal lower-priority frame per busy\n"
              "period (non-preemptive arbitration).\n");
  return 0;
}
