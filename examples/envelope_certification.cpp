// Trace-independent certification with arrival envelopes.
//
// The paper's analyzers bound the response times of one concrete release
// trace. A certification workflow usually needs more: a guarantee for EVERY
// arrival pattern the environment may produce. This example specifies jobs
// by leaky-bucket / jittered-periodic envelopes (Cruz's calculus, the
// paper's refs [20, 21]), certifies the system once, and then stress-tests
// the certificate by simulating several conforming traces -- including an
// adversarial synchronous-burst one.
//
// Build & run:  ./build/examples/envelope_certification
#include <cmath>
#include <cstdio>

#include "rta/rta.hpp"

int main() {
  using namespace rta;
  const Time window = 150.0;

  // A two-stage packet-processing line: classify on P0, forward on P1.
  System system(2, SchedulerKind::kSpp);

  Job voice;  // steady, tight deadline
  voice.name = "voice";
  voice.deadline = 6.0;
  voice.chain = {{0, 0.5, 0}, {1, 0.8, 0}};
  voice.arrivals = ArrivalSequence::periodic(4.0, window);
  system.add_job(std::move(voice));

  Job video;  // bursty: up to 3 frames at once, long-run one per 6
  video.name = "video";
  video.deadline = 18.0;
  video.chain = {{0, 1.0, 0}, {1, 1.5, 0}};
  video.arrivals =
      ArrivalSequence::burst_then_periodic(3, 0.5, 6.0, window);
  system.add_job(std::move(video));

  Job logs;  // background, generous deadline
  logs.name = "logs";
  logs.deadline = 40.0;
  logs.chain = {{0, 0.8, 0}, {1, 0.4, 0}};
  logs.arrivals = ArrivalSequence::periodic(10.0, window);
  system.add_job(std::move(logs));

  assign_proportional_deadline_monotonic(system);

  // Envelopes declare what the environment is ALLOWED to do -- more than the
  // specific traces above exercise.
  const std::vector<ArrivalEnvelope> contract = {
      ArrivalEnvelope::periodic(4.0, window, /*jitter=*/1.0),
      ArrivalEnvelope::leaky_bucket(/*burst=*/3.0, /*rate=*/1.0 / 6.0, window),
      ArrivalEnvelope::periodic(10.0, window, /*jitter=*/5.0),
  };

  const EnvelopeResult cert = EnvelopeAnalyzer().analyze(system, contract);
  if (!cert.ok) {
    std::fprintf(stderr, "certification failed: %s\n", cert.error.c_str());
    return 1;
  }

  std::printf("certificate (holds for EVERY trace inside the contract):\n");
  std::printf("%-8s %10s %10s %8s\n", "job", "bound", "deadline", "ok?");
  for (int k = 0; k < system.job_count(); ++k) {
    std::printf("%-8s %10.3f %10.3f %8s\n", system.job(k).name.c_str(),
                cert.jobs[k].wcrt, system.job(k).deadline,
                cert.jobs[k].schedulable ? "yes" : "NO");
  }

  // Stress the certificate with conforming traces the analyzer never saw.
  struct Variant {
    const char* name;
    System sys;
  };
  std::vector<Variant> variants;
  {
    System s = system;  // nominal traces
    variants.push_back({"nominal", std::move(s)});
  }
  {
    System s = system;  // voice jittered to its envelope limit
    Rng rng(7);
    s.job(0).arrivals =
        ArrivalSequence::jittered_periodic(4.0, 1.0, window, rng);
    variants.push_back({"jittered", std::move(s)});
  }
  {
    System s = system;  // synchronized worst case: all bursts at t = 0
    s.job(1).arrivals =
        ArrivalSequence::burst_then_periodic(3, 0.0001, 6.0, window);
    variants.push_back({"sync-burst", std::move(s)});
  }

  std::printf("\nstress test against conforming traces:\n");
  bool certificate_held = true;
  for (Variant& v : variants) {
    // Confirm conformance first, then simulate.
    bool conforms = true;
    for (int k = 0; k < v.sys.job_count(); ++k) {
      if (!contract[k].admits(v.sys.job(k).arrivals)) conforms = false;
    }
    const SimResult sim = simulate(v.sys, window + 60.0);
    std::printf("  %-10s conforms=%s ", v.name, conforms ? "yes" : "NO");
    for (int k = 0; k < v.sys.job_count(); ++k) {
      std::printf(" %s=%.2f", v.sys.job(k).name.c_str(),
                  sim.worst_response[k]);
      if (conforms && std::isfinite(cert.jobs[k].wcrt) &&
          sim.worst_response[k] > cert.jobs[k].wcrt + 1e-6) {
        certificate_held = false;
      }
    }
    std::printf("\n");
  }
  std::printf("\ncertificate held on every conforming trace: %s\n",
              certificate_held ? "yes" : "NO");
  return certificate_held ? 0 : 1;
}
