// Job-shop admission example (the paper's evaluation scenario, Figure 2):
// generate a random staged shop, analyze it with every applicable method,
// and cross-check each verdict against the discrete-event simulator.
//
// Flags: --stages N (default 4)  --procs N (default 2)  --jobs N (default 6)
//        --util U (default 0.6)  --seed S (default 1)   --aperiodic
//
// Build & run:  ./build/examples/jobshop_admission --util 0.8 --aperiodic
#include <cmath>
#include <cstdio>

#include "rta/rta.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace rta;
  const Options opts = Options::parse(argc, argv);

  JobShopConfig cfg;
  cfg.stages = opts.get_int("stages", 4);
  cfg.processors_per_stage = opts.get_int("procs", 2);
  cfg.jobs = opts.get_int("jobs", 6);
  cfg.utilization = opts.get_double("util", 0.6);
  cfg.pattern = opts.get_bool("aperiodic", false) ? ArrivalPattern::kAperiodic
                                                  : ArrivalPattern::kPeriodic;
  cfg.window_periods = 6.0;
  cfg.min_rate = 0.15;
  Rng rng(opts.get_int("seed", 1));
  const System base = generate_jobshop(cfg, rng);

  std::printf("job shop: %zu stages x %zu processors, %zu jobs, %s arrivals, "
              "utilization knob %.2f\n",
              cfg.stages, cfg.processors_per_stage, cfg.jobs,
              cfg.pattern == ArrivalPattern::kPeriodic ? "periodic" : "bursty",
              cfg.utilization);
  for (int k = 0; k < base.job_count(); ++k) {
    const Job& j = base.job(k);
    std::printf("  %-4s deadline %7.2f  route:", j.name.c_str(), j.deadline);
    for (const Subjob& s : j.chain) {
      std::printf(" P%d(%.2f)", s.processor, s.exec_time);
    }
    std::printf("  releases %zu\n", j.arrivals.count());
  }

  const std::vector<Method> methods = {Method::kSppExact, Method::kSppSL,
                                       Method::kSppApp, Method::kSpnpApp,
                                       Method::kFcfsApp};

  std::printf("\n%-10s %-9s %12s %12s %10s\n", "method", "admits?",
              "max wcrt", "sim worst", "bound ok?");
  for (Method method : methods) {
    System sys = base;
    for (int p = 0; p < sys.processor_count(); ++p) {
      sys.set_scheduler(p, method_scheduler(method));
    }
    assign_proportional_deadline_monotonic(sys);
    const ValidationReport rep =
        validate_method(method, sys, AnalysisConfig{});
    if (!rep.analysis_ok) {
      std::printf("%-10s %-9s (%s)\n", method_name(method), "n/a",
                  rep.error.c_str());
      continue;
    }
    bool admits = true;
    double max_bound = 0.0;
    double max_sim = 0.0;
    for (const JobValidation& jv : rep.jobs) {
      if (std::isinf(jv.analyzed_bound) || jv.analyzed_bound > jv.deadline) {
        admits = false;
      }
      max_bound = std::fmax(max_bound, jv.analyzed_bound);
      max_sim = std::fmax(max_sim, jv.simulated_worst);
    }
    std::printf("%-10s %-9s %12.3f %12.3f %10s\n", method_name(method),
                admits ? "yes" : "no", max_bound, max_sim,
                rep.bounds_hold() ? "yes" : "VIOLATED");
  }

  std::printf("\n(\"bound ok?\" checks that the analysis dominates the "
              "simulated worst case; SPP/Exact matches it exactly)\n");
  return 0;
}
