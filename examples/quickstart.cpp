// Quickstart: build a small distributed real-time system by hand, run the
// exact SPP analysis (paper §4.1), and check every job against its deadline.
//
//   Processors: P0 (sensor hub), P1 (fusion node), both SPP-scheduled.
//   Job "control": sensor read on P0 (0.4) -> control law on P1 (1.0),
//                  released every 4 time units, end-to-end deadline 3.
//   Job "logging": log pack on P0 (0.8) -> flush on P1 (0.6),
//                  released every 10 time units, deadline 10.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "rta/rta.hpp"

int main() {
  using namespace rta;

  System system(/*processor_count=*/2, SchedulerKind::kSpp);

  Job control;
  control.name = "control";
  control.deadline = 3.0;
  control.chain = {{/*processor=*/0, /*exec_time=*/0.4, /*priority=*/0},
                   {/*processor=*/1, /*exec_time=*/1.0, /*priority=*/0}};
  control.arrivals = ArrivalSequence::periodic(/*period=*/4.0, /*window=*/40.0);
  system.add_job(std::move(control));

  Job logging;
  logging.name = "logging";
  logging.deadline = 10.0;
  logging.chain = {{0, 0.8, 0}, {1, 0.6, 0}};
  logging.arrivals = ArrivalSequence::periodic(10.0, 40.0);
  system.add_job(std::move(logging));

  // Per-processor priorities from proportional sub-deadlines (Eq. 24).
  assign_proportional_deadline_monotonic(system);

  const AnalysisResult result = ExactSppAnalyzer().analyze(system);
  if (!result.ok) {
    std::fprintf(stderr, "analysis failed: %s\n", result.error.c_str());
    return 1;
  }

  std::printf("%-10s %10s %10s %6s\n", "job", "wcrt", "deadline", "ok?");
  for (int k = 0; k < system.job_count(); ++k) {
    const JobReport& report = result.jobs[k];
    std::printf("%-10s %10.3f %10.3f %6s\n", system.job(k).name.c_str(),
                report.wcrt, system.job(k).deadline,
                report.schedulable ? "yes" : "NO");
  }
  std::printf("\nsystem schedulable: %s\n",
              result.all_schedulable() ? "yes" : "no");

  // The exact analysis also exposes each instance's response time.
  std::printf("\ncontrol instance responses:");
  for (Time r : result.jobs[0].per_instance) std::printf(" %.3f", r);
  std::printf("\n");
  return result.all_schedulable() ? 0 : 1;
}
